//! STEK-encrypted session tickets.
//!
//! A server hands clients an opaque *ticket* after a completed handshake
//! (RFC 8446 §4.6.1); offering it back as a PSK identity lets a later
//! handshake skip certificate authentication entirely. The ticket is
//! self-contained server state sealed under a Session Ticket Encryption Key
//! (STEK): the server keeps no per-client table, only the key.
//!
//! STEKs rotate on a fixed wall-clock period. A ticket names the key epoch
//! it was sealed under; the server accepts the current epoch and the
//! immediately previous one (so rotation never invalidates a fresh ticket
//! mid-flight), and anything older deterministically falls back to the cold
//! path — exactly the failure mode the resumption experiments measure.

/// Encoded ticket identity length: epoch (8) ‖ ciphertext (24) ‖ tag (8).
pub const TICKET_LEN: usize = 40;

const PLAINTEXT_LEN: usize = 24;

/// splitmix64-style mixer: the deterministic stand-in for key derivation
/// and keystream generation (same family as the rest of the workspace).
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string (SNI binding).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Ticket lifetime and STEK rotation parameters, in simulated wall-clock
/// seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TicketConfig {
    /// Seconds a ticket stays valid after issuance (RFC 8446 caps the
    /// advertised lifetime at 7 days; deployments commonly use hours).
    pub lifetime_secs: u64,
    /// STEK rotation period. Tickets sealed two or more epochs ago are
    /// rejected even when their lifetime has not elapsed.
    pub rotation_secs: u64,
}

impl Default for TicketConfig {
    fn default() -> Self {
        TicketConfig {
            lifetime_secs: 7_200,
            rotation_secs: 3_600,
        }
    }
}

impl TicketConfig {
    /// The STEK epoch in force at `now_secs`.
    pub fn epoch_at(&self, now_secs: u64) -> u64 {
        now_secs / self.rotation_secs.max(1)
    }
}

/// A session ticket as the client holds it: the opaque identity plus the
/// metadata the NewSessionTicket message carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionTicket {
    /// Opaque identity bytes (what goes back in the PSK offer).
    pub identity: Vec<u8>,
    /// Advertised lifetime, seconds.
    pub lifetime_secs: u64,
    /// The ticket_age_add obfuscation value.
    pub age_add: u32,
    /// Wall-clock second the client obtained the ticket.
    pub obtained_at_secs: u64,
}

impl SessionTicket {
    /// Whether the ticket is still within its advertised lifetime at
    /// `now_secs` (the client-side freshness check; the server re-checks
    /// against the sealed issuance time).
    pub fn fresh_at(&self, now_secs: u64) -> bool {
        now_secs.saturating_sub(self.obtained_at_secs) <= self.lifetime_secs
    }

    /// The obfuscated ticket age the PSK offer carries (RFC 8446 §4.2.11:
    /// age in milliseconds plus `ticket_age_add`, mod 2³²).
    pub fn obfuscated_age(&self, now_secs: u64) -> u32 {
        let age_ms = now_secs.saturating_sub(self.obtained_at_secs) * 1_000;
        (age_ms as u32).wrapping_add(self.age_add)
    }
}

/// Why a ticket was (or was not) accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketValidation {
    /// Ticket decrypts under an accepted STEK, binds to the offered SNI,
    /// and is within its lifetime; `age_secs` is the server-side age.
    Valid {
        /// Seconds since issuance, per the sealed timestamp.
        age_secs: u64,
    },
    /// The sealing epoch is older than the previous-key acceptance window:
    /// the STEK has rotated away.
    RotatedKey,
    /// Decrypted fine but the sealed issuance time is past the lifetime.
    Expired,
    /// Bound to a different SNI than offered.
    WrongSni,
    /// Wrong length, future epoch, or MAC mismatch (tampered/garbage).
    Malformed,
}

impl TicketValidation {
    /// Whether the offer is accepted (the handshake may resume).
    pub fn accepted(self) -> bool {
        matches!(self, TicketValidation::Valid { .. })
    }
}

/// Server-side ticket issuance and validation under a rotating STEK.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TicketIssuer {
    /// Master key seed all epoch STEKs derive from.
    pub master_seed: u64,
    /// Lifetime / rotation parameters.
    pub config: TicketConfig,
}

impl TicketIssuer {
    /// Create an issuer.
    pub fn new(master_seed: u64, config: TicketConfig) -> Self {
        TicketIssuer {
            master_seed,
            config,
        }
    }

    /// The STEK for one epoch.
    fn stek(&self, epoch: u64) -> u64 {
        mix(self.master_seed ^ epoch.wrapping_mul(0x5349_4D5F_5354_454B))
    }

    fn keystream_byte(key: u64, i: usize) -> u8 {
        (mix(key ^ i as u64) >> 24) as u8
    }

    fn tag(key: u64, plaintext: &[u8]) -> [u8; 8] {
        (mix(key ^ fnv1a(plaintext))).to_be_bytes()
    }

    /// Seal a ticket for `sni` at `now_secs`. `nonce` differentiates
    /// multiple tickets issued within one second.
    pub fn issue(&self, sni: &str, now_secs: u64, nonce: u64) -> Vec<u8> {
        let epoch = self.config.epoch_at(now_secs);
        let key = self.stek(epoch);
        let mut plaintext = [0u8; PLAINTEXT_LEN];
        plaintext[0..8].copy_from_slice(&now_secs.to_be_bytes());
        plaintext[8..16].copy_from_slice(&fnv1a(sni.as_bytes()).to_be_bytes());
        plaintext[16..24].copy_from_slice(&nonce.to_be_bytes());

        let mut identity = Vec::with_capacity(TICKET_LEN);
        identity.extend_from_slice(&epoch.to_be_bytes());
        for (i, &p) in plaintext.iter().enumerate() {
            identity.push(p ^ Self::keystream_byte(key, i));
        }
        identity.extend_from_slice(&Self::tag(key, &plaintext));
        identity
    }

    /// Validate an offered identity against the STEK in force at
    /// `now_secs`, the offered `sni`, and the lifetime.
    pub fn validate(&self, identity: &[u8], sni: &str, now_secs: u64) -> TicketValidation {
        if identity.len() != TICKET_LEN {
            return TicketValidation::Malformed;
        }
        let epoch = u64::from_be_bytes(identity[0..8].try_into().unwrap());
        let current = self.config.epoch_at(now_secs);
        if epoch > current {
            return TicketValidation::Malformed;
        }
        if current - epoch > 1 {
            return TicketValidation::RotatedKey;
        }
        let key = self.stek(epoch);
        let mut plaintext = [0u8; PLAINTEXT_LEN];
        for (i, p) in plaintext.iter_mut().enumerate() {
            *p = identity[8 + i] ^ Self::keystream_byte(key, i);
        }
        if identity[8 + PLAINTEXT_LEN..] != Self::tag(key, &plaintext) {
            return TicketValidation::Malformed;
        }
        let issued_at = u64::from_be_bytes(plaintext[0..8].try_into().unwrap());
        let sni_hash = u64::from_be_bytes(plaintext[8..16].try_into().unwrap());
        if sni_hash != fnv1a(sni.as_bytes()) {
            return TicketValidation::WrongSni;
        }
        if issued_at > now_secs {
            return TicketValidation::Malformed;
        }
        let age_secs = now_secs - issued_at;
        if age_secs > self.config.lifetime_secs {
            return TicketValidation::Expired;
        }
        TicketValidation::Valid { age_secs }
    }
}

/// Everything a QUIC server needs to participate in resumption: the ticket
/// issuer plus the server's current wall clock and whether it hands out
/// fresh tickets after complete handshakes.
///
/// `None` on a server config means no resumption support at all — the
/// pre-subsystem behaviour, preserved byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResumptionHost {
    /// Ticket sealing/validation state.
    pub issuer: TicketIssuer,
    /// The server's wall clock at handshake start (simulated seconds; the
    /// scenario axis advances this between the cold and warm visits).
    pub now_secs: u64,
    /// Issue a NewSessionTicket after each completed handshake.
    pub issue_tickets: bool,
}

impl ResumptionHost {
    /// A ticket-issuing host with default lifetimes.
    pub fn issuing(master_seed: u64, now_secs: u64) -> Self {
        ResumptionHost {
            issuer: TicketIssuer::new(master_seed, TicketConfig::default()),
            now_secs,
            issue_tickets: true,
        }
    }

    /// The same host observed at a later wall-clock instant, no longer
    /// issuing (the warm-visit side of a scan).
    pub fn revisited_at(mut self, now_secs: u64) -> Self {
        self.now_secs = now_secs;
        self.issue_tickets = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn issuer() -> TicketIssuer {
        TicketIssuer::new(0xABCD, TicketConfig::default())
    }

    #[test]
    fn roundtrip_accepts_fresh_ticket() {
        let iss = issuer();
        let t = iss.issue("example.org", 1_000_000, 7);
        assert_eq!(t.len(), TICKET_LEN);
        assert_eq!(
            iss.validate(&t, "example.org", 1_000_030),
            TicketValidation::Valid { age_secs: 30 }
        );
    }

    #[test]
    fn expired_ticket_is_rejected() {
        let iss = issuer();
        // Keep both instants inside one rotation window so the *lifetime*
        // is the binding constraint (lifetime < rotation here would never
        // trigger; defaults have lifetime 2x rotation, so force epochs).
        let cfg = TicketConfig {
            lifetime_secs: 100,
            rotation_secs: 1_000_000,
        };
        let iss = TicketIssuer::new(iss.master_seed, cfg);
        let t = iss.issue("example.org", 500, 0);
        assert_eq!(
            iss.validate(&t, "example.org", 700),
            TicketValidation::Expired
        );
    }

    #[test]
    fn previous_epoch_accepted_older_rejected() {
        let iss = issuer();
        let rot = iss.config.rotation_secs;
        let t = iss.issue("a.example", 10 * rot, 0);
        // Same epoch and the next one: accepted (lifetime 2x rotation).
        assert!(iss.validate(&t, "a.example", 10 * rot + 5).accepted());
        assert!(iss.validate(&t, "a.example", 11 * rot + 5).accepted());
        // Two rotations later the key is gone.
        assert_eq!(
            iss.validate(&t, "a.example", 12 * rot + 5),
            TicketValidation::RotatedKey
        );
    }

    #[test]
    fn wrong_sni_and_tampering_are_rejected() {
        let iss = issuer();
        let t = iss.issue("a.example", 5_000, 1);
        assert_eq!(
            iss.validate(&t, "b.example", 5_010),
            TicketValidation::WrongSni
        );
        let mut bad = t.clone();
        bad[20] ^= 0xFF;
        assert_eq!(
            iss.validate(&bad, "a.example", 5_010),
            TicketValidation::Malformed
        );
        assert_eq!(
            iss.validate(&t[..10], "a.example", 5_010),
            TicketValidation::Malformed
        );
    }

    #[test]
    fn future_epoch_is_malformed() {
        let iss = issuer();
        let t = iss.issue("a.example", 1_000_000, 0);
        assert_eq!(
            iss.validate(&t, "a.example", 10),
            TicketValidation::Malformed
        );
    }

    #[test]
    fn different_master_seed_rejects() {
        let a = TicketIssuer::new(1, TicketConfig::default());
        let b = TicketIssuer::new(2, TicketConfig::default());
        let t = a.issue("x.example", 9_999, 0);
        assert!(a.validate(&t, "x.example", 9_999).accepted());
        assert_eq!(
            b.validate(&t, "x.example", 9_999),
            TicketValidation::Malformed
        );
    }

    #[test]
    fn obfuscated_age_wraps_with_age_add() {
        let t = SessionTicket {
            identity: vec![0; TICKET_LEN],
            lifetime_secs: 7_200,
            age_add: u32::MAX,
            obtained_at_secs: 100,
        };
        assert!(t.fresh_at(7_300));
        assert!(!t.fresh_at(7_301));
        assert_eq!(t.obfuscated_age(101), 999); // 1000ms + (2^32-1) mod 2^32
    }
}
