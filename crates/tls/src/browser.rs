//! Browser client profiles (Table 1 of the paper).
//!
//! The paper compares the QUIC `Initial` sizes and certificate-compression
//! support of popular browsers: Firefox pads Initials to 1357 bytes and
//! offers no compression; Chromium derivatives pad to 1250 bytes (recently
//! reduced from 1350) and offer brotli; Safari ships no QUIC but offers
//! zlib and zstd over TLS-in-TCP.

use quicert_compress::Algorithm;

/// A browser's QUIC/TLS client parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BrowserProfile {
    /// Browser family name.
    pub name: &'static str,
    /// Version the paper tested.
    pub version: &'static str,
    /// UDP payload size of the client Initial, if the browser speaks QUIC.
    pub initial_size: Option<usize>,
    /// Certificate compression algorithms offered in the ClientHello.
    pub compression: Vec<Algorithm>,
}

impl BrowserProfile {
    /// Whether the browser deploys QUIC at all.
    pub fn speaks_quic(&self) -> bool {
        self.initial_size.is_some()
    }
}

/// Firefox 101.x: 1357-byte Initials, no certificate compression.
pub fn firefox() -> BrowserProfile {
    BrowserProfile {
        name: "Firefox",
        version: "101.x",
        initial_size: Some(1357),
        compression: vec![],
    }
}

/// Chromium 105.x (Chrome, Brave, Vivaldi, Edge, Opera): 1250-byte
/// Initials (recently reduced from 1350), brotli compression.
pub fn chromium() -> BrowserProfile {
    BrowserProfile {
        name: "Chromium",
        version: "105.x",
        initial_size: Some(1250),
        compression: vec![Algorithm::Brotli],
    }
}

/// Safari 15.5 (macOS): no QUIC; zlib and zstd compression over TCP.
pub fn safari() -> BrowserProfile {
    BrowserProfile {
        name: "Safari",
        version: "15.5",
        initial_size: None,
        compression: vec![Algorithm::Zlib, Algorithm::Zstd],
    }
}

/// Firefox profile constant-style accessor.
pub const FIREFOX: fn() -> BrowserProfile = firefox;
/// Chromium profile constant-style accessor.
pub const CHROMIUM: fn() -> BrowserProfile = chromium;
/// Safari profile constant-style accessor.
pub const SAFARI: fn() -> BrowserProfile = safari;

/// All Table 1 browser profiles.
pub fn all_profiles() -> Vec<BrowserProfile> {
    vec![firefox(), chromium(), safari()]
}

/// The two "common amplification limits" the paper uses as reference lines:
/// 3 × Chromium's 1250-byte Initial and 3 × Firefox's 1357-byte Initial.
pub fn common_amplification_limits() -> (usize, usize) {
    (3 * 1250, 3 * 1357)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_initial_sizes() {
        assert_eq!(firefox().initial_size, Some(1357));
        assert_eq!(chromium().initial_size, Some(1250));
        assert_eq!(safari().initial_size, None);
    }

    #[test]
    fn table1_compression_offers() {
        assert!(firefox().compression.is_empty());
        assert_eq!(chromium().compression, vec![Algorithm::Brotli]);
        assert_eq!(safari().compression, vec![Algorithm::Zlib, Algorithm::Zstd]);
    }

    #[test]
    fn quic_support() {
        assert!(firefox().speaks_quic());
        assert!(chromium().speaks_quic());
        assert!(!safari().speaks_quic());
    }

    #[test]
    fn limits_match_paper_thresholds() {
        let (lo, hi) = common_amplification_limits();
        assert_eq!(lo, 3750);
        assert_eq!(hi, 4071);
    }
}
