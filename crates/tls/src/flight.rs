//! The server's first TLS flight, split the way QUIC transports it.
//!
//! RFC 9001 maps TLS handshake messages onto QUIC encryption levels:
//! ServerHello travels in *Initial* packets, while EncryptedExtensions,
//! Certificate(/Compressed), CertificateVerify and Finished travel in
//! *Handshake* packets. [`ServerFlight`] encodes both parts so the QUIC
//! layer can frame them into CRYPTO streams.

use quicert_compress::Algorithm;
use quicert_x509::{CertificateChain, KeyAlgorithm};

use crate::messages;

/// What the server puts into its first flight.
///
/// The chain is borrowed: building a flight is a read-only rendering of the
/// server's configured chain, and the scanner builds one flight per probed
/// record — forcing callers to clone the chain here was measurable at the
/// million-record scale.
#[derive(Debug, Clone)]
pub struct ServerFlightParams<'a> {
    /// The certificate chain to present.
    pub chain: &'a CertificateChain,
    /// The leaf key algorithm (sizes the CertificateVerify signature).
    pub leaf_key: KeyAlgorithm,
    /// Compression algorithm to use for the Certificate message, if the
    /// client offered one the server supports.
    pub compression: Option<Algorithm>,
    /// Deterministic seed for randoms/signatures.
    pub seed: u64,
}

/// The encoded server flight, split by QUIC encryption level.
#[derive(Debug, Clone)]
pub struct ServerFlight {
    /// CRYPTO payload at the Initial encryption level (ServerHello).
    pub initial_crypto: Vec<u8>,
    /// CRYPTO payload at the Handshake encryption level
    /// (EE ‖ Certificate\[Compressed\] ‖ CertificateVerify ‖ Finished).
    pub handshake_crypto: Vec<u8>,
    /// Size of the (possibly compressed) certificate message inside
    /// `handshake_crypto`.
    pub certificate_message_len: usize,
    /// Size the certificate message would have had uncompressed.
    pub uncompressed_certificate_len: usize,
}

impl ServerFlight {
    /// Build the *resumed* flight: the server accepted a PSK offer, so the
    /// first flight is ServerHello(+pre_shared_key) at the Initial level
    /// and EncryptedExtensions ‖ Finished at the Handshake level — no
    /// Certificate, no CertificateVerify. The whole flight is a few hundred
    /// bytes, which is what lets a resumed handshake fit the 3×
    /// anti-amplification budget at any client Initial size.
    pub fn build_resumed(seed: u64) -> ServerFlight {
        let initial_crypto = messages::server_hello_resumed(seed);
        let mut handshake_crypto = messages::encrypted_extensions(seed);
        handshake_crypto.extend_from_slice(&messages::finished(seed));
        ServerFlight {
            initial_crypto,
            handshake_crypto,
            certificate_message_len: 0,
            uncompressed_certificate_len: 0,
        }
    }

    /// Build the flight for the given parameters.
    pub fn build(params: &ServerFlightParams<'_>) -> ServerFlight {
        let initial_crypto = messages::server_hello(params.seed);

        let plain_cert = messages::certificate_message(params.chain);
        let uncompressed_certificate_len = plain_cert.len();
        let cert_msg = match params.compression {
            Some(alg) => {
                let compressed = messages::compressed_certificate_message(params.chain, alg);
                // RFC 8879 servers fall back to the plain message if
                // compression would not help.
                if compressed.len() < plain_cert.len() {
                    compressed
                } else {
                    plain_cert
                }
            }
            None => plain_cert,
        };
        let certificate_message_len = cert_msg.len();

        let mut handshake_crypto = messages::encrypted_extensions(params.seed);
        handshake_crypto.extend_from_slice(&cert_msg);
        handshake_crypto
            .extend_from_slice(&messages::certificate_verify(params.leaf_key, params.seed));
        handshake_crypto.extend_from_slice(&messages::finished(params.seed));

        ServerFlight {
            initial_crypto,
            handshake_crypto,
            certificate_message_len,
            uncompressed_certificate_len,
        }
    }

    /// Total TLS bytes in the flight (both levels).
    pub fn total_tls_len(&self) -> usize {
        self.initial_crypto.len() + self.handshake_crypto.len()
    }

    /// Whether the certificate message ended up compressed.
    pub fn is_compressed(&self) -> bool {
        self.certificate_message_len < self.uncompressed_certificate_len
    }

    /// Achieved compression ratio of the certificate message
    /// (compressed/uncompressed; 1.0 when uncompressed or when the flight
    /// carries no certificate at all — the resumed case).
    pub fn compression_ratio(&self) -> f64 {
        if self.uncompressed_certificate_len == 0 {
            return 1.0;
        }
        self.certificate_message_len as f64 / self.uncompressed_certificate_len as f64
    }

    /// Whether this is a resumed (certificate-free) flight.
    pub fn is_resumed(&self) -> bool {
        self.uncompressed_certificate_len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicert_x509::{
        CertificateBuilder, DistinguishedName, Extension, SignatureAlgorithm, SubjectPublicKeyInfo,
    };

    fn chain(leaf_key: KeyAlgorithm) -> CertificateChain {
        let inter_dn = DistinguishedName::ca("US", "Let's Encrypt", "R3");
        let root_dn =
            DistinguishedName::ca("US", "Internet Security Research Group", "ISRG Root X1");
        let inter = CertificateBuilder::new(
            root_dn,
            inter_dn.clone(),
            SubjectPublicKeyInfo::new(KeyAlgorithm::Rsa2048, 11),
            SignatureAlgorithm::Sha256WithRsa2048,
        )
        .build();
        let leaf = CertificateBuilder::new(
            inter_dn,
            DistinguishedName::cn("quic.example"),
            SubjectPublicKeyInfo::new(leaf_key, 12),
            SignatureAlgorithm::Sha256WithRsa2048,
        )
        .extension(Extension::SubjectAltNames(vec!["quic.example".into()]))
        .extension(Extension::SctList { count: 2, seed: 13 })
        .build();
        CertificateChain::new(leaf, vec![inter])
    }

    fn params(chain: &CertificateChain, compression: Option<Algorithm>) -> ServerFlightParams<'_> {
        ServerFlightParams {
            chain,
            leaf_key: KeyAlgorithm::EcdsaP256,
            compression,
            seed: 21,
        }
    }

    #[test]
    fn flight_is_dominated_by_the_chain() {
        let c = chain(KeyAlgorithm::EcdsaP256);
        let p = params(&c, None);
        let flight = ServerFlight::build(&p);
        assert!(flight.handshake_crypto.len() > p.chain.total_der_len());
        assert!(flight.initial_crypto.len() < 150);
        assert_eq!(
            flight.total_tls_len(),
            flight.initial_crypto.len() + flight.handshake_crypto.len()
        );
        assert!(!flight.is_compressed());
        assert_eq!(flight.compression_ratio(), 1.0);
    }

    #[test]
    fn compression_shrinks_the_flight() {
        let c = chain(KeyAlgorithm::EcdsaP256);
        let plain = ServerFlight::build(&params(&c, None));
        for alg in Algorithm::ALL {
            let compressed = ServerFlight::build(&params(&c, Some(alg)));
            assert!(
                compressed.handshake_crypto.len() < plain.handshake_crypto.len(),
                "{alg} must shrink the flight"
            );
            assert!(compressed.is_compressed());
            assert!(compressed.compression_ratio() < 1.0);
        }
    }

    #[test]
    fn rsa_leaf_grows_certificate_verify() {
        let rsa_chain = chain(KeyAlgorithm::Rsa2048);
        let mut p = params(&rsa_chain, None);
        p.leaf_key = KeyAlgorithm::Rsa2048;
        let rsa = ServerFlight::build(&p);
        let ecdsa_chain = chain(KeyAlgorithm::EcdsaP256);
        let ecdsa = ServerFlight::build(&params(&ecdsa_chain, None));
        assert!(rsa.handshake_crypto.len() > ecdsa.handshake_crypto.len() + 180);
    }

    #[test]
    fn resumed_flight_carries_no_certificate_bytes() {
        let c = chain(KeyAlgorithm::EcdsaP256);
        let cold = ServerFlight::build(&params(&c, None));
        let resumed = ServerFlight::build_resumed(21);
        assert!(resumed.is_resumed());
        assert!(!cold.is_resumed());
        assert_eq!(resumed.certificate_message_len, 0);
        assert_eq!(resumed.uncompressed_certificate_len, 0);
        assert_eq!(resumed.compression_ratio(), 1.0);
        // A resumed flight is a small fraction of even a compact cold one:
        // SH + EE + Finished only.
        assert!(resumed.total_tls_len() < 400, "{}", resumed.total_tls_len());
        assert!(resumed.total_tls_len() * 3 < cold.total_tls_len());
        // And it is detectably PSK-accepting at the Initial level.
        assert!(crate::messages::server_hello_accepted_psk(
            &resumed.initial_crypto
        ));
    }

    #[test]
    fn deterministic_flights() {
        let c = chain(KeyAlgorithm::EcdsaP256);
        let a = ServerFlight::build(&params(&c, Some(Algorithm::Brotli)));
        let b = ServerFlight::build(&params(&c, Some(Algorithm::Brotli)));
        assert_eq!(a.handshake_crypto, b.handshake_crypto);
        assert_eq!(a.initial_crypto, b.initial_crypto);
    }
}
