//! # quicert-tls — minimal TLS 1.3 handshake messages for QUIC
//!
//! QUIC (RFC 9001) carries the TLS 1.3 handshake in CRYPTO frames; the
//! server's first flight — ServerHello, EncryptedExtensions, Certificate (or
//! CompressedCertificate, RFC 8879), CertificateVerify, Finished — is the
//! payload whose size collides with the anti-amplification limit. This crate
//! encodes those messages with their real wire framing so the byte counts
//! seen by the QUIC layer are genuine.
//!
//! As with `quicert-x509`, cryptographic payloads (randoms, key shares,
//! signatures, MACs) are deterministic placeholders of exactly the right
//! size; no actual key exchange is performed.
//!
//! The crate also carries the browser client profiles of Table 1
//! ([`browser::BrowserProfile`]).

pub mod browser;
pub mod flight;
pub mod messages;

pub use browser::{BrowserProfile, CHROMIUM, FIREFOX, SAFARI};
pub use flight::{ServerFlight, ServerFlightParams};
pub use messages::{
    certificate_message, certificate_verify, client_hello, compressed_certificate_message,
    encrypted_extensions, finished, new_session_ticket, parse_new_session_ticket, parse_psk_offer,
    parse_server_name, server_hello, server_hello_accepted_psk, server_hello_resumed,
    ClientHelloParams, HandshakeType, NewSessionTicket, PskOffer,
};
