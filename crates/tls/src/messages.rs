//! TLS 1.3 handshake message encoders.
//!
//! Each function returns a full handshake message: a one-byte type, a
//! three-byte length, and the body (RFC 8446 §4). Sizes track the real
//! protocol; contents that would be cryptographic are deterministic filler.

use quicert_compress::Algorithm;
use quicert_x509::CertificateChain;

/// TLS handshake message types (RFC 8446 §4, RFC 8879 §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum HandshakeType {
    /// ClientHello
    ClientHello = 1,
    /// ServerHello
    ServerHello = 2,
    /// EncryptedExtensions
    EncryptedExtensions = 8,
    /// Certificate
    Certificate = 11,
    /// CertificateVerify
    CertificateVerify = 15,
    /// Finished
    Finished = 20,
    /// CompressedCertificate (RFC 8879)
    CompressedCertificate = 25,
}

fn fill(seed: u64, buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        let mut z = seed
            .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0xD1B5_4A32_D192_ED03);
        z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        *b = (z >> 32) as u8;
    }
}

fn handshake_message(ty: HandshakeType, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 4);
    out.push(ty as u8);
    out.extend_from_slice(&u24(body.len()));
    out.extend_from_slice(body);
    out
}

fn u24(v: usize) -> [u8; 3] {
    debug_assert!(v < 1 << 24);
    [(v >> 16) as u8, (v >> 8) as u8, v as u8]
}

fn u16be(v: usize) -> [u8; 2] {
    debug_assert!(v < 1 << 16);
    [(v >> 8) as u8, v as u8]
}

fn extension(ty: u16, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 4);
    out.extend_from_slice(&ty.to_be_bytes());
    out.extend_from_slice(&u16be(data.len()));
    out.extend_from_slice(data);
    out
}

// Extension type code points.
const EXT_SERVER_NAME: u16 = 0;
const EXT_SUPPORTED_GROUPS: u16 = 10;
const EXT_ALPN: u16 = 16;
const EXT_SIGNATURE_ALGORITHMS: u16 = 13;
const EXT_SUPPORTED_VERSIONS: u16 = 43;
const EXT_KEY_SHARE: u16 = 51;
const EXT_QUIC_TRANSPORT_PARAMS: u16 = 0x0039;
/// RFC 8879 compress_certificate extension.
pub const EXT_COMPRESS_CERTIFICATE: u16 = 27;

/// Parameters of a ClientHello.
#[derive(Debug, Clone)]
pub struct ClientHelloParams {
    /// SNI host name.
    pub server_name: String,
    /// Offered certificate compression algorithms (empty = extension
    /// omitted).
    pub compression: Vec<Algorithm>,
    /// Deterministic seed for random fields.
    pub seed: u64,
}

/// Encode a ClientHello handshake message.
pub fn client_hello(params: &ClientHelloParams) -> Vec<u8> {
    let mut body = Vec::with_capacity(512);
    body.extend_from_slice(&[0x03, 0x03]); // legacy_version TLS 1.2
    let mut random = [0u8; 32];
    fill(params.seed, &mut random);
    body.extend_from_slice(&random);
    // legacy_session_id: QUIC clients send empty.
    body.push(0);
    // cipher_suites: the three TLS 1.3 suites.
    body.extend_from_slice(&u16be(6));
    body.extend_from_slice(&[0x13, 0x01, 0x13, 0x02, 0x13, 0x03]);
    // legacy_compression_methods: null only.
    body.extend_from_slice(&[0x01, 0x00]);

    let mut exts: Vec<u8> = Vec::new();
    // server_name: list(2) + type(1) + len(2) + name.
    let name = params.server_name.as_bytes();
    let mut sni = Vec::with_capacity(name.len() + 5);
    sni.extend_from_slice(&u16be(name.len() + 3));
    sni.push(0);
    sni.extend_from_slice(&u16be(name.len()));
    sni.extend_from_slice(name);
    exts.extend(extension(EXT_SERVER_NAME, &sni));
    // supported_versions: TLS 1.3 only.
    exts.extend(extension(EXT_SUPPORTED_VERSIONS, &[0x02, 0x03, 0x04]));
    // supported_groups: x25519, P-256, P-384.
    exts.extend(extension(
        EXT_SUPPORTED_GROUPS,
        &[0x00, 0x06, 0x00, 0x1D, 0x00, 0x17, 0x00, 0x18],
    ));
    // signature_algorithms: the common nine.
    let algs: &[u16] = &[
        0x0403, 0x0804, 0x0401, 0x0503, 0x0805, 0x0501, 0x0806, 0x0601, 0x0201,
    ];
    let mut sig = Vec::with_capacity(algs.len() * 2 + 2);
    sig.extend_from_slice(&u16be(algs.len() * 2));
    for a in algs {
        sig.extend_from_slice(&a.to_be_bytes());
    }
    exts.extend(extension(EXT_SIGNATURE_ALGORITHMS, &sig));
    // key_share: one x25519 share.
    let mut share = [0u8; 32];
    fill(params.seed ^ 0x4B45_5953_4841_5245, &mut share);
    let mut ks = Vec::with_capacity(42);
    ks.extend_from_slice(&u16be(36));
    ks.extend_from_slice(&[0x00, 0x1D]);
    ks.extend_from_slice(&u16be(32));
    ks.extend_from_slice(&share);
    exts.extend(extension(EXT_KEY_SHARE, &ks));
    // ALPN: h3.
    exts.extend(extension(EXT_ALPN, &[0x00, 0x03, 0x02, b'h', b'3']));
    // psk_key_exchange_modes: psk_dhe_ke.
    exts.extend(extension(45, &[0x01, 0x01]));
    // status_request: OCSP stapling.
    exts.extend(extension(5, &[0x01, 0x00, 0x00, 0x00, 0x00]));
    // QUIC transport parameters (opaque, typical ~60 bytes).
    let mut tp = [0u8; 58];
    fill(params.seed ^ 0x7061_7261, &mut tp);
    exts.extend(extension(EXT_QUIC_TRANSPORT_PARAMS, &tp));
    // compress_certificate (RFC 8879), only if offered.
    if !params.compression.is_empty() {
        let mut cc = Vec::with_capacity(params.compression.len() * 2 + 1);
        cc.push((params.compression.len() * 2) as u8);
        for alg in &params.compression {
            cc.extend_from_slice(&alg.code_point().to_be_bytes());
        }
        exts.extend(extension(EXT_COMPRESS_CERTIFICATE, &cc));
    }

    body.extend_from_slice(&u16be(exts.len()));
    body.extend_from_slice(&exts);
    handshake_message(HandshakeType::ClientHello, &body)
}

/// Encode a ServerHello handshake message.
pub fn server_hello(seed: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(128);
    body.extend_from_slice(&[0x03, 0x03]);
    let mut random = [0u8; 32];
    fill(seed ^ 0x5348_4C4F, &mut random);
    body.extend_from_slice(&random);
    body.push(0); // echo empty session id
    body.extend_from_slice(&[0x13, 0x01]); // TLS_AES_128_GCM_SHA256
    body.push(0); // null compression
    let mut exts: Vec<u8> = Vec::new();
    exts.extend(extension(EXT_SUPPORTED_VERSIONS, &[0x03, 0x04]));
    let mut share = [0u8; 32];
    fill(seed ^ 0x4B45_5953, &mut share);
    let mut ks = Vec::with_capacity(38);
    ks.extend_from_slice(&[0x00, 0x1D]);
    ks.extend_from_slice(&u16be(32));
    ks.extend_from_slice(&share);
    exts.extend(extension(EXT_KEY_SHARE, &ks));
    body.extend_from_slice(&u16be(exts.len()));
    body.extend_from_slice(&exts);
    handshake_message(HandshakeType::ServerHello, &body)
}

/// Encode EncryptedExtensions (ALPN echo + QUIC transport parameters).
pub fn encrypted_extensions(seed: u64) -> Vec<u8> {
    let mut exts: Vec<u8> = Vec::new();
    exts.extend(extension(EXT_ALPN, &[0x00, 0x03, 0x02, b'h', b'3']));
    let mut tp = [0u8; 61];
    fill(seed ^ 0x7472_7073, &mut tp);
    exts.extend(extension(EXT_QUIC_TRANSPORT_PARAMS, &tp));
    let mut body = Vec::with_capacity(exts.len() + 2);
    body.extend_from_slice(&u16be(exts.len()));
    body.extend_from_slice(&exts);
    handshake_message(HandshakeType::EncryptedExtensions, &body)
}

/// Encode a Certificate message carrying `chain` (RFC 8446 §4.4.2).
pub fn certificate_message(chain: &CertificateChain) -> Vec<u8> {
    let mut list = Vec::with_capacity(chain.total_der_len() + chain.depth() * 5);
    for cert in chain.certs() {
        list.extend_from_slice(&u24(cert.der_len()));
        list.extend_from_slice(cert.der());
        list.extend_from_slice(&u16be(0)); // no per-certificate extensions
    }
    let mut body = Vec::with_capacity(list.len() + 4);
    body.push(0); // empty certificate_request_context
    body.extend_from_slice(&u24(list.len()));
    body.extend_from_slice(&list);
    handshake_message(HandshakeType::Certificate, &body)
}

/// Encode a CompressedCertificate message (RFC 8879 §5): the inner
/// Certificate message compressed with `algorithm`.
pub fn compressed_certificate_message(chain: &CertificateChain, algorithm: Algorithm) -> Vec<u8> {
    let inner = certificate_message(chain);
    let compressed = quicert_compress::compress(algorithm, &inner);
    let mut body = Vec::with_capacity(compressed.len() + 8);
    body.extend_from_slice(&algorithm.code_point().to_be_bytes());
    body.extend_from_slice(&u24(inner.len()));
    body.extend_from_slice(&u24(compressed.len()));
    body.extend_from_slice(&compressed);
    handshake_message(HandshakeType::CompressedCertificate, &body)
}

/// Encode CertificateVerify. The signature size follows the leaf key
/// algorithm (RSA-PSS for RSA keys, ECDSA otherwise).
pub fn certificate_verify(leaf_key: quicert_x509::KeyAlgorithm, seed: u64) -> Vec<u8> {
    use quicert_x509::KeyAlgorithm::*;
    let (alg_id, sig_len): (u16, usize) = match leaf_key {
        Rsa2048 => (0x0804, 256),  // rsa_pss_rsae_sha256
        Rsa4096 => (0x0805, 512),  // rsa_pss_rsae_sha384
        EcdsaP256 => (0x0403, 71), // ecdsa_secp256r1_sha256 (typical DER size)
        EcdsaP384 => (0x0503, 103),
    };
    let mut sig = vec![0u8; sig_len];
    fill(seed ^ 0x6376_6679, &mut sig);
    let mut body = Vec::with_capacity(sig_len + 4);
    body.extend_from_slice(&alg_id.to_be_bytes());
    body.extend_from_slice(&u16be(sig_len));
    body.extend_from_slice(&sig);
    handshake_message(HandshakeType::CertificateVerify, &body)
}

/// Encode Finished (32-byte verify_data for the SHA-256 suites).
pub fn finished(seed: u64) -> Vec<u8> {
    let mut mac = [0u8; 32];
    fill(seed ^ 0x6669_6E21, &mut mac);
    handshake_message(HandshakeType::Finished, &mac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicert_x509::{
        CertificateBuilder, DistinguishedName, Extension, KeyAlgorithm, SignatureAlgorithm,
        SubjectPublicKeyInfo,
    };

    fn chain() -> CertificateChain {
        let inter_dn = DistinguishedName::ca("US", "Let's Encrypt", "R3");
        let root_dn = DistinguishedName::ca("US", "ISRG", "ISRG Root X1");
        let inter = CertificateBuilder::new(
            root_dn,
            inter_dn.clone(),
            SubjectPublicKeyInfo::new(KeyAlgorithm::Rsa2048, 1),
            SignatureAlgorithm::Sha256WithRsa2048,
        )
        .build();
        let leaf = CertificateBuilder::new(
            inter_dn,
            DistinguishedName::cn("example.org"),
            SubjectPublicKeyInfo::new(KeyAlgorithm::EcdsaP256, 2),
            SignatureAlgorithm::Sha256WithRsa2048,
        )
        .extension(Extension::SubjectAltNames(vec!["example.org".into()]))
        .build();
        CertificateChain::new(leaf, vec![inter])
    }

    fn params(compression: Vec<quicert_compress::Algorithm>) -> ClientHelloParams {
        ClientHelloParams {
            server_name: "example.org".into(),
            compression,
            seed: 7,
        }
    }

    #[test]
    fn client_hello_has_realistic_size() {
        let ch = client_hello(&params(vec![]));
        // Real browser ClientHellos (without GREASE/padding) run ~230–450 B.
        assert!((230..500).contains(&ch.len()), "was {}", ch.len());
        assert_eq!(ch[0], HandshakeType::ClientHello as u8);
        let body_len = ((ch[1] as usize) << 16) | ((ch[2] as usize) << 8) | ch[3] as usize;
        assert_eq!(body_len + 4, ch.len());
    }

    #[test]
    fn compression_offer_adds_extension() {
        let without = client_hello(&params(vec![]));
        let with = client_hello(&params(vec![quicert_compress::Algorithm::Brotli]));
        assert!(with.len() > without.len());
        // Extension code point 27 appears in the encoding.
        let needle = [0x00u8, 27];
        assert!(with.windows(2).any(|w| w == needle));
        assert!(!without.windows(2).any(|w| w == needle));
    }

    #[test]
    fn server_hello_size_is_realistic() {
        let sh = server_hello(3);
        // Real TLS 1.3 ServerHellos are ~90–130 bytes.
        assert!((85..140).contains(&sh.len()), "was {}", sh.len());
    }

    #[test]
    fn certificate_message_wraps_chain_with_framing() {
        let c = chain();
        let msg = certificate_message(&c);
        // 4 (hs hdr) + 1 (ctx) + 3 (list len) + per cert 3 + DER + 2.
        let expected = 4 + 1 + 3 + c.depth() * 5 + c.total_der_len();
        assert_eq!(msg.len(), expected);
        assert_eq!(msg[0], HandshakeType::Certificate as u8);
    }

    #[test]
    fn compressed_certificate_is_smaller() {
        let c = chain();
        let plain = certificate_message(&c);
        for alg in quicert_compress::Algorithm::ALL {
            let compressed = compressed_certificate_message(&c, alg);
            assert!(
                compressed.len() < plain.len(),
                "{alg}: {} !< {}",
                compressed.len(),
                plain.len()
            );
            assert_eq!(compressed[0], HandshakeType::CompressedCertificate as u8);
        }
    }

    #[test]
    fn certificate_verify_size_tracks_key_algorithm() {
        let ecdsa = certificate_verify(KeyAlgorithm::EcdsaP256, 1);
        let rsa = certificate_verify(KeyAlgorithm::Rsa2048, 1);
        assert_eq!(ecdsa.len(), 4 + 2 + 2 + 71);
        assert_eq!(rsa.len(), 4 + 2 + 2 + 256);
    }

    #[test]
    fn finished_is_fixed_size() {
        assert_eq!(finished(1).len(), 4 + 32);
    }

    #[test]
    fn messages_are_deterministic() {
        assert_eq!(client_hello(&params(vec![])), client_hello(&params(vec![])));
        assert_eq!(server_hello(5), server_hello(5));
        assert_ne!(server_hello(5), server_hello(6));
    }
}
