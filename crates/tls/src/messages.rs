//! TLS 1.3 handshake message encoders.
//!
//! Each function returns a full handshake message: a one-byte type, a
//! three-byte length, and the body (RFC 8446 §4). Sizes track the real
//! protocol; contents that would be cryptographic are deterministic filler.

use quicert_compress::Algorithm;
use quicert_x509::CertificateChain;

/// TLS handshake message types (RFC 8446 §4, RFC 8879 §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum HandshakeType {
    /// ClientHello
    ClientHello = 1,
    /// ServerHello
    ServerHello = 2,
    /// NewSessionTicket (post-handshake, RFC 8446 §4.6.1)
    NewSessionTicket = 4,
    /// EncryptedExtensions
    EncryptedExtensions = 8,
    /// Certificate
    Certificate = 11,
    /// CertificateVerify
    CertificateVerify = 15,
    /// Finished
    Finished = 20,
    /// CompressedCertificate (RFC 8879)
    CompressedCertificate = 25,
}

fn fill(seed: u64, buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        let mut z = seed
            .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(0xD1B5_4A32_D192_ED03);
        z = (z ^ (z >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        *b = (z >> 32) as u8;
    }
}

fn handshake_message(ty: HandshakeType, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 4);
    out.push(ty as u8);
    out.extend_from_slice(&u24(body.len()));
    out.extend_from_slice(body);
    out
}

fn u24(v: usize) -> [u8; 3] {
    debug_assert!(v < 1 << 24);
    [(v >> 16) as u8, (v >> 8) as u8, v as u8]
}

fn u16be(v: usize) -> [u8; 2] {
    debug_assert!(v < 1 << 16);
    [(v >> 8) as u8, v as u8]
}

fn extension(ty: u16, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 4);
    out.extend_from_slice(&ty.to_be_bytes());
    out.extend_from_slice(&u16be(data.len()));
    out.extend_from_slice(data);
    out
}

// Extension type code points.
const EXT_SERVER_NAME: u16 = 0;
const EXT_SUPPORTED_GROUPS: u16 = 10;
const EXT_ALPN: u16 = 16;
const EXT_SIGNATURE_ALGORITHMS: u16 = 13;
const EXT_SUPPORTED_VERSIONS: u16 = 43;
const EXT_KEY_SHARE: u16 = 51;
const EXT_QUIC_TRANSPORT_PARAMS: u16 = 0x0039;
/// RFC 8879 compress_certificate extension.
pub const EXT_COMPRESS_CERTIFICATE: u16 = 27;
/// RFC 8446 pre_shared_key extension (resumption offers/acceptance).
pub const EXT_PRE_SHARED_KEY: u16 = 41;

/// PSK binder length for the SHA-256 suites.
const PSK_BINDER_LEN: usize = 32;

/// A pre-shared-key offer carried in a ClientHello (RFC 8446 §4.2.11):
/// one ticket identity plus its obfuscated age.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PskOffer {
    /// Opaque ticket identity as issued by the server.
    pub identity: Vec<u8>,
    /// Ticket age in milliseconds, obfuscated with `ticket_age_add`.
    pub obfuscated_age: u32,
}

/// Parameters of a ClientHello.
#[derive(Debug, Clone)]
pub struct ClientHelloParams {
    /// SNI host name.
    pub server_name: String,
    /// Offered certificate compression algorithms (empty = extension
    /// omitted).
    pub compression: Vec<Algorithm>,
    /// Session-ticket offer; `None` encodes byte-for-byte the classic
    /// (cold) ClientHello.
    pub psk: Option<PskOffer>,
    /// Deterministic seed for random fields.
    pub seed: u64,
}

/// Encode a ClientHello handshake message.
pub fn client_hello(params: &ClientHelloParams) -> Vec<u8> {
    let mut body = Vec::with_capacity(512);
    body.extend_from_slice(&[0x03, 0x03]); // legacy_version TLS 1.2
    let mut random = [0u8; 32];
    fill(params.seed, &mut random);
    body.extend_from_slice(&random);
    // legacy_session_id: QUIC clients send empty.
    body.push(0);
    // cipher_suites: the three TLS 1.3 suites.
    body.extend_from_slice(&u16be(6));
    body.extend_from_slice(&[0x13, 0x01, 0x13, 0x02, 0x13, 0x03]);
    // legacy_compression_methods: null only.
    body.extend_from_slice(&[0x01, 0x00]);

    let mut exts: Vec<u8> = Vec::new();
    // server_name: list(2) + type(1) + len(2) + name.
    let name = params.server_name.as_bytes();
    let mut sni = Vec::with_capacity(name.len() + 5);
    sni.extend_from_slice(&u16be(name.len() + 3));
    sni.push(0);
    sni.extend_from_slice(&u16be(name.len()));
    sni.extend_from_slice(name);
    exts.extend(extension(EXT_SERVER_NAME, &sni));
    // supported_versions: TLS 1.3 only.
    exts.extend(extension(EXT_SUPPORTED_VERSIONS, &[0x02, 0x03, 0x04]));
    // supported_groups: x25519, P-256, P-384.
    exts.extend(extension(
        EXT_SUPPORTED_GROUPS,
        &[0x00, 0x06, 0x00, 0x1D, 0x00, 0x17, 0x00, 0x18],
    ));
    // signature_algorithms: the common nine.
    let algs: &[u16] = &[
        0x0403, 0x0804, 0x0401, 0x0503, 0x0805, 0x0501, 0x0806, 0x0601, 0x0201,
    ];
    let mut sig = Vec::with_capacity(algs.len() * 2 + 2);
    sig.extend_from_slice(&u16be(algs.len() * 2));
    for a in algs {
        sig.extend_from_slice(&a.to_be_bytes());
    }
    exts.extend(extension(EXT_SIGNATURE_ALGORITHMS, &sig));
    // key_share: one x25519 share.
    let mut share = [0u8; 32];
    fill(params.seed ^ 0x4B45_5953_4841_5245, &mut share);
    let mut ks = Vec::with_capacity(42);
    ks.extend_from_slice(&u16be(36));
    ks.extend_from_slice(&[0x00, 0x1D]);
    ks.extend_from_slice(&u16be(32));
    ks.extend_from_slice(&share);
    exts.extend(extension(EXT_KEY_SHARE, &ks));
    // ALPN: h3.
    exts.extend(extension(EXT_ALPN, &[0x00, 0x03, 0x02, b'h', b'3']));
    // psk_key_exchange_modes: psk_dhe_ke.
    exts.extend(extension(45, &[0x01, 0x01]));
    // status_request: OCSP stapling.
    exts.extend(extension(5, &[0x01, 0x00, 0x00, 0x00, 0x00]));
    // QUIC transport parameters (opaque, typical ~60 bytes).
    let mut tp = [0u8; 58];
    fill(params.seed ^ 0x7061_7261, &mut tp);
    exts.extend(extension(EXT_QUIC_TRANSPORT_PARAMS, &tp));
    // compress_certificate (RFC 8879), only if offered.
    if !params.compression.is_empty() {
        let mut cc = Vec::with_capacity(params.compression.len() * 2 + 1);
        cc.push((params.compression.len() * 2) as u8);
        for alg in &params.compression {
            cc.extend_from_slice(&alg.code_point().to_be_bytes());
        }
        exts.extend(extension(EXT_COMPRESS_CERTIFICATE, &cc));
    }
    // pre_shared_key (RFC 8446 §4.2.11): must be the last extension.
    if let Some(psk) = &params.psk {
        let mut data = Vec::with_capacity(psk.identity.len() + PSK_BINDER_LEN + 11);
        // identities: one entry = identity(2+len) + obfuscated_age(4).
        data.extend_from_slice(&u16be(psk.identity.len() + 6));
        data.extend_from_slice(&u16be(psk.identity.len()));
        data.extend_from_slice(&psk.identity);
        data.extend_from_slice(&psk.obfuscated_age.to_be_bytes());
        // binders: one binder = 1-byte length + HMAC (deterministic filler).
        data.extend_from_slice(&u16be(PSK_BINDER_LEN + 1));
        data.push(PSK_BINDER_LEN as u8);
        let mut binder = [0u8; PSK_BINDER_LEN];
        fill(params.seed ^ 0x7073_6B62_6E64, &mut binder);
        data.extend_from_slice(&binder);
        exts.extend(extension(EXT_PRE_SHARED_KEY, &data));
    }

    body.extend_from_slice(&u16be(exts.len()));
    body.extend_from_slice(&exts);
    handshake_message(HandshakeType::ClientHello, &body)
}

/// Encode a ServerHello handshake message.
pub fn server_hello(seed: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(128);
    body.extend_from_slice(&[0x03, 0x03]);
    let mut random = [0u8; 32];
    fill(seed ^ 0x5348_4C4F, &mut random);
    body.extend_from_slice(&random);
    body.push(0); // echo empty session id
    body.extend_from_slice(&[0x13, 0x01]); // TLS_AES_128_GCM_SHA256
    body.push(0); // null compression
    let mut exts: Vec<u8> = Vec::new();
    exts.extend(extension(EXT_SUPPORTED_VERSIONS, &[0x03, 0x04]));
    let mut share = [0u8; 32];
    fill(seed ^ 0x4B45_5953, &mut share);
    let mut ks = Vec::with_capacity(38);
    ks.extend_from_slice(&[0x00, 0x1D]);
    ks.extend_from_slice(&u16be(32));
    ks.extend_from_slice(&share);
    exts.extend(extension(EXT_KEY_SHARE, &ks));
    body.extend_from_slice(&u16be(exts.len()));
    body.extend_from_slice(&exts);
    handshake_message(HandshakeType::ServerHello, &body)
}

/// Encode a ServerHello that accepts a PSK offer: the classic ServerHello
/// plus a pre_shared_key extension selecting identity 0. This is the only
/// wire-visible difference between a cold and a resumed ServerHello, and
/// what [`server_hello_accepted_psk`] detects on the client side.
pub fn server_hello_resumed(seed: u64) -> Vec<u8> {
    let mut msg = server_hello(seed);
    // Splice the extension into the extensions block: the block length
    // field sits right after the fixed ServerHello prefix.
    let body_start = 4;
    let ext_len_pos = body_start + 2 + 32 + 1 + 2 + 1;
    let old_ext_len = u16::from_be_bytes([msg[ext_len_pos], msg[ext_len_pos + 1]]) as usize;
    let addition = extension(EXT_PRE_SHARED_KEY, &[0x00, 0x00]); // selected_identity 0
    msg.extend_from_slice(&addition);
    let new_ext_len = (old_ext_len + addition.len()) as u16;
    msg[ext_len_pos..ext_len_pos + 2].copy_from_slice(&new_ext_len.to_be_bytes());
    // Patch the handshake-message length header.
    let new_body_len = msg.len() - 4;
    msg[1..4].copy_from_slice(&u24(new_body_len));
    msg
}

/// Whether a ServerHello handshake message carries a pre_shared_key
/// extension — i.e. the server accepted the client's resumption offer.
pub fn server_hello_accepted_psk(sh: &[u8]) -> bool {
    if sh.len() < 4 || sh[0] != HandshakeType::ServerHello as u8 {
        return false;
    }
    let body = &sh[4..];
    // legacy_version(2) + random(32) + session_id(1+len) + cipher(2) +
    // compression(1), then the extensions block.
    let mut pos = 2 + 32;
    let Some(&sid_len) = body.get(pos) else {
        return false;
    };
    pos += 1 + sid_len as usize + 2 + 1;
    let Some(ext_len_bytes) = body.get(pos..pos + 2) else {
        return false;
    };
    let ext_total = u16::from_be_bytes([ext_len_bytes[0], ext_len_bytes[1]]) as usize;
    pos += 2;
    let end = (pos + ext_total).min(body.len());
    while pos + 4 <= end {
        let ty = u16::from_be_bytes([body[pos], body[pos + 1]]);
        let len = u16::from_be_bytes([body[pos + 2], body[pos + 3]]) as usize;
        pos += 4;
        if ty == EXT_PRE_SHARED_KEY {
            return true;
        }
        pos += len;
    }
    false
}

/// A parsed NewSessionTicket message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewSessionTicket {
    /// Advertised ticket lifetime, seconds.
    pub lifetime_secs: u32,
    /// Obfuscation value added to the ticket age on later offers.
    pub age_add: u32,
    /// The opaque ticket.
    pub ticket: Vec<u8>,
}

/// Encode a NewSessionTicket message (RFC 8446 §4.6.1).
pub fn new_session_ticket(lifetime_secs: u32, age_add: u32, ticket: &[u8], seed: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(ticket.len() + 23);
    body.extend_from_slice(&lifetime_secs.to_be_bytes());
    body.extend_from_slice(&age_add.to_be_bytes());
    let mut nonce = [0u8; 8];
    fill(seed ^ 0x6E73_746E, &mut nonce);
    body.push(nonce.len() as u8);
    body.extend_from_slice(&nonce);
    body.extend_from_slice(&u16be(ticket.len()));
    body.extend_from_slice(ticket);
    body.extend_from_slice(&u16be(0)); // no extensions
    handshake_message(HandshakeType::NewSessionTicket, &body)
}

/// Parse a NewSessionTicket message; `None` when malformed or a different
/// message type.
pub fn parse_new_session_ticket(msg: &[u8]) -> Option<NewSessionTicket> {
    if msg.len() < 4 || msg[0] != HandshakeType::NewSessionTicket as u8 {
        return None;
    }
    let body = &msg[4..];
    let lifetime_secs = u32::from_be_bytes(body.get(0..4)?.try_into().ok()?);
    let age_add = u32::from_be_bytes(body.get(4..8)?.try_into().ok()?);
    let mut pos = 8;
    let nonce_len = *body.get(pos)? as usize;
    pos += 1 + nonce_len;
    let ticket_len = u16::from_be_bytes([*body.get(pos)?, *body.get(pos + 1)?]) as usize;
    pos += 2;
    let ticket = body.get(pos..pos + ticket_len)?.to_vec();
    Some(NewSessionTicket {
        lifetime_secs,
        age_add,
        ticket,
    })
}

/// Walk a ClientHello's extensions, returning the first with type `wanted`.
fn client_hello_extension(ch: &[u8], wanted: u16) -> Option<&[u8]> {
    if ch.len() < 4 || ch[0] != HandshakeType::ClientHello as u8 {
        return None;
    }
    let body = &ch[4..];
    let mut pos = 2 + 32; // legacy_version + random
    let sid_len = *body.get(pos)? as usize;
    pos += 1 + sid_len;
    let cs_len = u16::from_be_bytes([*body.get(pos)?, *body.get(pos + 1)?]) as usize;
    pos += 2 + cs_len;
    let comp_len = *body.get(pos)? as usize;
    pos += 1 + comp_len;
    let ext_total = u16::from_be_bytes([*body.get(pos)?, *body.get(pos + 1)?]) as usize;
    pos += 2;
    let end = (pos + ext_total).min(body.len());
    while pos + 4 <= end {
        let ty = u16::from_be_bytes([body[pos], body[pos + 1]]);
        let len = u16::from_be_bytes([body[pos + 2], body[pos + 3]]) as usize;
        pos += 4;
        if ty == wanted {
            return body.get(pos..pos + len);
        }
        pos += len;
    }
    None
}

/// Extract the SNI host name from a ClientHello (the server needs it to
/// bind issued tickets to the host).
pub fn parse_server_name(ch: &[u8]) -> Option<String> {
    let data = client_hello_extension(ch, EXT_SERVER_NAME)?;
    // server_name_list: list_len(2) + type(1) + name_len(2) + name.
    let name_len = u16::from_be_bytes([*data.get(3)?, *data.get(4)?]) as usize;
    let name = data.get(5..5 + name_len)?;
    String::from_utf8(name.to_vec()).ok()
}

/// Extract the PSK offer from a ClientHello, if one is present.
pub fn parse_psk_offer(ch: &[u8]) -> Option<PskOffer> {
    let data = client_hello_extension(ch, EXT_PRE_SHARED_KEY)?;
    // identities: list_len(2) + first identity (2+len) + age(4).
    let id_len = u16::from_be_bytes([*data.get(2)?, *data.get(3)?]) as usize;
    let identity = data.get(4..4 + id_len)?.to_vec();
    let age_off = 4 + id_len;
    let obfuscated_age = u32::from_be_bytes(data.get(age_off..age_off + 4)?.try_into().ok()?);
    Some(PskOffer {
        identity,
        obfuscated_age,
    })
}

/// Encode EncryptedExtensions (ALPN echo + QUIC transport parameters).
pub fn encrypted_extensions(seed: u64) -> Vec<u8> {
    let mut exts: Vec<u8> = Vec::new();
    exts.extend(extension(EXT_ALPN, &[0x00, 0x03, 0x02, b'h', b'3']));
    let mut tp = [0u8; 61];
    fill(seed ^ 0x7472_7073, &mut tp);
    exts.extend(extension(EXT_QUIC_TRANSPORT_PARAMS, &tp));
    let mut body = Vec::with_capacity(exts.len() + 2);
    body.extend_from_slice(&u16be(exts.len()));
    body.extend_from_slice(&exts);
    handshake_message(HandshakeType::EncryptedExtensions, &body)
}

/// Encode a Certificate message carrying `chain` (RFC 8446 §4.4.2).
pub fn certificate_message(chain: &CertificateChain) -> Vec<u8> {
    let mut list = Vec::with_capacity(chain.total_der_len() + chain.depth() * 5);
    for cert in chain.certs() {
        list.extend_from_slice(&u24(cert.der_len()));
        list.extend_from_slice(cert.der());
        list.extend_from_slice(&u16be(0)); // no per-certificate extensions
    }
    let mut body = Vec::with_capacity(list.len() + 4);
    body.push(0); // empty certificate_request_context
    body.extend_from_slice(&u24(list.len()));
    body.extend_from_slice(&list);
    handshake_message(HandshakeType::Certificate, &body)
}

/// Encode a CompressedCertificate message (RFC 8879 §5): the inner
/// Certificate message compressed with `algorithm`.
pub fn compressed_certificate_message(chain: &CertificateChain, algorithm: Algorithm) -> Vec<u8> {
    let inner = certificate_message(chain);
    let compressed = quicert_compress::compress(algorithm, &inner);
    let mut body = Vec::with_capacity(compressed.len() + 8);
    body.extend_from_slice(&algorithm.code_point().to_be_bytes());
    body.extend_from_slice(&u24(inner.len()));
    body.extend_from_slice(&u24(compressed.len()));
    body.extend_from_slice(&compressed);
    handshake_message(HandshakeType::CompressedCertificate, &body)
}

/// Encode CertificateVerify. The signature size follows the leaf key
/// algorithm (RSA-PSS for RSA keys, ECDSA otherwise; ML-DSA sizes per
/// draft-ietf-tls-mldsa, hybrids concatenate both component signatures per
/// the hybrid-signature drafts with private-use code points).
pub fn certificate_verify(leaf_key: quicert_x509::KeyAlgorithm, seed: u64) -> Vec<u8> {
    use quicert_x509::KeyAlgorithm::*;
    let (alg_id, sig_len): (u16, usize) = match leaf_key {
        Rsa2048 => (0x0804, 256),  // rsa_pss_rsae_sha256
        Rsa4096 => (0x0805, 512),  // rsa_pss_rsae_sha384
        EcdsaP256 => (0x0403, 71), // ecdsa_secp256r1_sha256 (typical DER size)
        EcdsaP384 => (0x0503, 103),
        MlDsa44 => (0x0904, quicert_x509::alg::ML_DSA_44_SIG_LEN), // mldsa44
        MlDsa65 => (0x0905, quicert_x509::alg::ML_DSA_65_SIG_LEN), // mldsa65
        // Private-use code points: concatenated ML-DSA ‖ ECDSA signatures.
        HybridP256MlDsa44 => (0xFE44, quicert_x509::alg::ML_DSA_44_SIG_LEN + 71),
        HybridP384MlDsa65 => (0xFE65, quicert_x509::alg::ML_DSA_65_SIG_LEN + 103),
    };
    let mut sig = vec![0u8; sig_len];
    fill(seed ^ 0x6376_6679, &mut sig);
    let mut body = Vec::with_capacity(sig_len + 4);
    body.extend_from_slice(&alg_id.to_be_bytes());
    body.extend_from_slice(&u16be(sig_len));
    body.extend_from_slice(&sig);
    handshake_message(HandshakeType::CertificateVerify, &body)
}

/// Encode Finished (32-byte verify_data for the SHA-256 suites).
pub fn finished(seed: u64) -> Vec<u8> {
    let mut mac = [0u8; 32];
    fill(seed ^ 0x6669_6E21, &mut mac);
    handshake_message(HandshakeType::Finished, &mac)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicert_x509::{
        CertificateBuilder, DistinguishedName, Extension, KeyAlgorithm, SignatureAlgorithm,
        SubjectPublicKeyInfo,
    };

    fn chain() -> CertificateChain {
        let inter_dn = DistinguishedName::ca("US", "Let's Encrypt", "R3");
        let root_dn = DistinguishedName::ca("US", "ISRG", "ISRG Root X1");
        let inter = CertificateBuilder::new(
            root_dn,
            inter_dn.clone(),
            SubjectPublicKeyInfo::new(KeyAlgorithm::Rsa2048, 1),
            SignatureAlgorithm::Sha256WithRsa2048,
        )
        .build();
        let leaf = CertificateBuilder::new(
            inter_dn,
            DistinguishedName::cn("example.org"),
            SubjectPublicKeyInfo::new(KeyAlgorithm::EcdsaP256, 2),
            SignatureAlgorithm::Sha256WithRsa2048,
        )
        .extension(Extension::SubjectAltNames(vec!["example.org".into()]))
        .build();
        CertificateChain::new(leaf, vec![inter])
    }

    fn params(compression: Vec<quicert_compress::Algorithm>) -> ClientHelloParams {
        ClientHelloParams {
            server_name: "example.org".into(),
            compression,
            psk: None,
            seed: 7,
        }
    }

    #[test]
    fn client_hello_has_realistic_size() {
        let ch = client_hello(&params(vec![]));
        // Real browser ClientHellos (without GREASE/padding) run ~230–450 B.
        assert!((230..500).contains(&ch.len()), "was {}", ch.len());
        assert_eq!(ch[0], HandshakeType::ClientHello as u8);
        let body_len = ((ch[1] as usize) << 16) | ((ch[2] as usize) << 8) | ch[3] as usize;
        assert_eq!(body_len + 4, ch.len());
    }

    #[test]
    fn compression_offer_adds_extension() {
        let without = client_hello(&params(vec![]));
        let with = client_hello(&params(vec![quicert_compress::Algorithm::Brotli]));
        assert!(with.len() > without.len());
        // Extension code point 27 appears in the encoding.
        let needle = [0x00u8, 27];
        assert!(with.windows(2).any(|w| w == needle));
        assert!(!without.windows(2).any(|w| w == needle));
    }

    #[test]
    fn server_hello_size_is_realistic() {
        let sh = server_hello(3);
        // Real TLS 1.3 ServerHellos are ~90–130 bytes.
        assert!((85..140).contains(&sh.len()), "was {}", sh.len());
    }

    #[test]
    fn certificate_message_wraps_chain_with_framing() {
        let c = chain();
        let msg = certificate_message(&c);
        // 4 (hs hdr) + 1 (ctx) + 3 (list len) + per cert 3 + DER + 2.
        let expected = 4 + 1 + 3 + c.depth() * 5 + c.total_der_len();
        assert_eq!(msg.len(), expected);
        assert_eq!(msg[0], HandshakeType::Certificate as u8);
    }

    #[test]
    fn compressed_certificate_is_smaller() {
        let c = chain();
        let plain = certificate_message(&c);
        for alg in quicert_compress::Algorithm::ALL {
            let compressed = compressed_certificate_message(&c, alg);
            assert!(
                compressed.len() < plain.len(),
                "{alg}: {} !< {}",
                compressed.len(),
                plain.len()
            );
            assert_eq!(compressed[0], HandshakeType::CompressedCertificate as u8);
        }
    }

    #[test]
    fn certificate_verify_size_tracks_key_algorithm() {
        let ecdsa = certificate_verify(KeyAlgorithm::EcdsaP256, 1);
        let rsa = certificate_verify(KeyAlgorithm::Rsa2048, 1);
        assert_eq!(ecdsa.len(), 4 + 2 + 2 + 71);
        assert_eq!(rsa.len(), 4 + 2 + 2 + 256);
        // ML-DSA CertificateVerify dwarfs every classical variant (FIPS 204
        // signature sizes), and the hybrid adds the ECDSA component on top.
        let mldsa = certificate_verify(KeyAlgorithm::MlDsa44, 1);
        assert_eq!(mldsa.len(), 4 + 2 + 2 + 2420);
        let hybrid = certificate_verify(KeyAlgorithm::HybridP256MlDsa44, 1);
        assert_eq!(hybrid.len(), 4 + 2 + 2 + 2420 + 71);
        assert_eq!(
            certificate_verify(KeyAlgorithm::MlDsa65, 1).len(),
            4 + 2 + 2 + 3309
        );
        assert_eq!(
            certificate_verify(KeyAlgorithm::HybridP384MlDsa65, 1).len(),
            4 + 2 + 2 + 3309 + 103
        );
    }

    #[test]
    fn finished_is_fixed_size() {
        assert_eq!(finished(1).len(), 4 + 32);
    }

    #[test]
    fn messages_are_deterministic() {
        assert_eq!(client_hello(&params(vec![])), client_hello(&params(vec![])));
        assert_eq!(server_hello(5), server_hello(5));
        assert_ne!(server_hello(5), server_hello(6));
    }

    fn psk_params() -> ClientHelloParams {
        ClientHelloParams {
            psk: Some(PskOffer {
                identity: vec![0xAB; 40],
                obfuscated_age: 123_456,
            }),
            ..params(vec![])
        }
    }

    #[test]
    fn psk_offer_roundtrips_through_client_hello() {
        let ch = client_hello(&psk_params());
        let offer = parse_psk_offer(&ch).expect("offer present");
        assert_eq!(offer.identity, vec![0xAB; 40]);
        assert_eq!(offer.obfuscated_age, 123_456);
        assert_eq!(parse_psk_offer(&client_hello(&params(vec![]))), None);
    }

    #[test]
    fn psk_extension_is_last_and_length_consistent() {
        let ch = client_hello(&psk_params());
        let body_len = ((ch[1] as usize) << 16) | ((ch[2] as usize) << 8) | ch[3] as usize;
        assert_eq!(body_len + 4, ch.len());
        // pre_shared_key must be the last extension (RFC 8446 §4.2.11):
        // its payload is identities (2 + 2+40+4) + binders (2 + 1+32) = 83
        // bytes, so the extension header sits exactly 87 bytes from the end.
        let pos = ch.len() - 83 - 4;
        let ty = u16::from_be_bytes([ch[pos], ch[pos + 1]]);
        let len = u16::from_be_bytes([ch[pos + 2], ch[pos + 3]]) as usize;
        assert_eq!(ty, EXT_PRE_SHARED_KEY);
        assert_eq!(pos + 4 + len, ch.len(), "pre_shared_key must be last");
    }

    #[test]
    fn server_name_parses_back_out() {
        let ch = client_hello(&params(vec![]));
        assert_eq!(parse_server_name(&ch).as_deref(), Some("example.org"));
        assert_eq!(parse_server_name(&server_hello(1)), None);
    }

    #[test]
    fn resumed_server_hello_is_detectable_and_wellformed() {
        let cold = server_hello(9);
        let resumed = server_hello_resumed(9);
        assert!(!server_hello_accepted_psk(&cold));
        assert!(server_hello_accepted_psk(&resumed));
        // Length header stays consistent after the splice.
        let body_len =
            ((resumed[1] as usize) << 16) | ((resumed[2] as usize) << 8) | resumed[3] as usize;
        assert_eq!(body_len + 4, resumed.len());
        assert_eq!(resumed.len(), cold.len() + 6);
    }

    #[test]
    fn new_session_ticket_roundtrips() {
        let ticket = vec![0x42; 40];
        let msg = new_session_ticket(7_200, 0xDEAD_BEEF, &ticket, 3);
        assert_eq!(msg[0], HandshakeType::NewSessionTicket as u8);
        let parsed = parse_new_session_ticket(&msg).expect("parses");
        assert_eq!(parsed.lifetime_secs, 7_200);
        assert_eq!(parsed.age_add, 0xDEAD_BEEF);
        assert_eq!(parsed.ticket, ticket);
        assert_eq!(parse_new_session_ticket(&server_hello(1)), None);
    }

    #[test]
    fn psk_free_client_hello_is_bit_for_bit_unchanged() {
        // The cold ClientHello must not move by a single byte when the
        // resumption machinery is compiled in but unused.
        let ch = client_hello(&params(vec![]));
        assert!((230..500).contains(&ch.len()));
        assert!(!ch
            .windows(2)
            .any(|w| w == [0x00u8, EXT_PRE_SHARED_KEY as u8]));
    }
}
