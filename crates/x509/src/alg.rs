//! Public-key and signature algorithms.
//!
//! Table 2 of the paper reports the algorithm/key-length mix in the wild
//! (RSA-2048/4096, ECDSA P-256/P-384); the byte-size consequences of that
//! choice drive Figures 6–8. This module encodes SubjectPublicKeyInfo and
//! signature values with exactly the DER layout (and therefore exactly the
//! sizes) of the real algorithms.

use crate::der;
use crate::fill_deterministic;
use crate::oid;

/// ML-DSA-44 public-key size in bytes (FIPS 204, Table 2).
pub const ML_DSA_44_PK_LEN: usize = 1312;
/// ML-DSA-44 signature size in bytes.
pub const ML_DSA_44_SIG_LEN: usize = 2420;
/// ML-DSA-65 public-key size in bytes.
pub const ML_DSA_65_PK_LEN: usize = 1952;
/// ML-DSA-65 signature size in bytes.
pub const ML_DSA_65_SIG_LEN: usize = 3309;

/// Public-key algorithm and key length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyAlgorithm {
    /// RSA with a 2048-bit modulus.
    Rsa2048,
    /// RSA with a 4096-bit modulus.
    Rsa4096,
    /// ECDSA on P-256 (prime256v1).
    EcdsaP256,
    /// ECDSA on P-384 (secp384r1).
    EcdsaP384,
    /// ML-DSA-44 (FIPS 204; 1312-byte public key, 2420-byte signature).
    MlDsa44,
    /// ML-DSA-65 (FIPS 204; 1952-byte public key, 3309-byte signature).
    MlDsa65,
    /// Composite hybrid ECDSA P-256 + ML-DSA-44
    /// (draft-ietf-lamps-pq-composite-sigs).
    HybridP256MlDsa44,
    /// Composite hybrid ECDSA P-384 + ML-DSA-65.
    HybridP384MlDsa65,
}

impl KeyAlgorithm {
    /// The classical algorithms, in Table 2 column order. (The paper's 2022
    /// scan saw no post-quantum keys; those live in
    /// [`KeyAlgorithm::POST_QUANTUM`].)
    pub const ALL: [KeyAlgorithm; 4] = [
        KeyAlgorithm::Rsa2048,
        KeyAlgorithm::Rsa4096,
        KeyAlgorithm::EcdsaP256,
        KeyAlgorithm::EcdsaP384,
    ];

    /// The post-quantum and hybrid algorithms of the certificate-era axis.
    pub const POST_QUANTUM: [KeyAlgorithm; 4] = [
        KeyAlgorithm::MlDsa44,
        KeyAlgorithm::MlDsa65,
        KeyAlgorithm::HybridP256MlDsa44,
        KeyAlgorithm::HybridP384MlDsa65,
    ];

    /// Every supported algorithm, classical first.
    pub const ALL_ERAS: [KeyAlgorithm; 8] = [
        KeyAlgorithm::Rsa2048,
        KeyAlgorithm::Rsa4096,
        KeyAlgorithm::EcdsaP256,
        KeyAlgorithm::EcdsaP384,
        KeyAlgorithm::MlDsa44,
        KeyAlgorithm::MlDsa65,
        KeyAlgorithm::HybridP256MlDsa44,
        KeyAlgorithm::HybridP384MlDsa65,
    ];

    /// Human-readable label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            KeyAlgorithm::Rsa2048 => "RSA-2048",
            KeyAlgorithm::Rsa4096 => "RSA-4096",
            KeyAlgorithm::EcdsaP256 => "ECDSA-256",
            KeyAlgorithm::EcdsaP384 => "ECDSA-384",
            KeyAlgorithm::MlDsa44 => "ML-DSA-44",
            KeyAlgorithm::MlDsa65 => "ML-DSA-65",
            KeyAlgorithm::HybridP256MlDsa44 => "ECDSA-256+ML-DSA-44",
            KeyAlgorithm::HybridP384MlDsa65 => "ECDSA-384+ML-DSA-65",
        }
    }

    /// Whether this is an RSA variant.
    pub fn is_rsa(self) -> bool {
        matches!(self, KeyAlgorithm::Rsa2048 | KeyAlgorithm::Rsa4096)
    }

    /// Whether this key contains a post-quantum component (pure ML-DSA or a
    /// classical+ML-DSA hybrid).
    pub fn is_post_quantum(self) -> bool {
        matches!(
            self,
            KeyAlgorithm::MlDsa44
                | KeyAlgorithm::MlDsa65
                | KeyAlgorithm::HybridP256MlDsa44
                | KeyAlgorithm::HybridP384MlDsa65
        )
    }

    /// Whether this is a classical+post-quantum hybrid.
    pub fn is_hybrid(self) -> bool {
        matches!(
            self,
            KeyAlgorithm::HybridP256MlDsa44 | KeyAlgorithm::HybridP384MlDsa65
        )
    }

    /// Raw public-key material size in bytes (modulus, field element, or
    /// ML-DSA public key; hybrids count both components).
    pub fn key_bytes(self) -> usize {
        match self {
            KeyAlgorithm::Rsa2048 => 256,
            KeyAlgorithm::Rsa4096 => 512,
            KeyAlgorithm::EcdsaP256 => 32,
            KeyAlgorithm::EcdsaP384 => 48,
            KeyAlgorithm::MlDsa44 => ML_DSA_44_PK_LEN,
            KeyAlgorithm::MlDsa65 => ML_DSA_65_PK_LEN,
            // Uncompressed EC point (1 + 2·coord) plus the ML-DSA key.
            KeyAlgorithm::HybridP256MlDsa44 => 65 + ML_DSA_44_PK_LEN,
            KeyAlgorithm::HybridP384MlDsa65 => 97 + ML_DSA_65_PK_LEN,
        }
    }

    /// The signature algorithm a CA holding this key signs with.
    pub fn signature_algorithm(self) -> SignatureAlgorithm {
        match self {
            KeyAlgorithm::Rsa2048 => SignatureAlgorithm::Sha256WithRsa2048,
            KeyAlgorithm::Rsa4096 => SignatureAlgorithm::Sha384WithRsa4096,
            KeyAlgorithm::EcdsaP256 => SignatureAlgorithm::EcdsaSha256,
            KeyAlgorithm::EcdsaP384 => SignatureAlgorithm::EcdsaSha384,
            KeyAlgorithm::MlDsa44 => SignatureAlgorithm::MlDsa44,
            KeyAlgorithm::MlDsa65 => SignatureAlgorithm::MlDsa65,
            KeyAlgorithm::HybridP256MlDsa44 => SignatureAlgorithm::CompositeP256MlDsa44,
            KeyAlgorithm::HybridP384MlDsa65 => SignatureAlgorithm::CompositeP384MlDsa65,
        }
    }
}

/// A signature algorithm (hash + key flavour), as it appears both in the
/// `signatureAlgorithm` field and in the signature value size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignatureAlgorithm {
    /// sha256WithRSAEncryption over a 2048-bit key (256-byte signature).
    Sha256WithRsa2048,
    /// sha384WithRSAEncryption over a 4096-bit key (512-byte signature).
    Sha384WithRsa4096,
    /// ecdsa-with-SHA256 (DER-encoded r/s pair, ~70 bytes).
    EcdsaSha256,
    /// ecdsa-with-SHA384 (DER-encoded r/s pair, ~102 bytes).
    EcdsaSha384,
    /// id-ml-dsa-44 (raw 2420-byte signature, FIPS 204).
    MlDsa44,
    /// id-ml-dsa-65 (raw 3309-byte signature).
    MlDsa65,
    /// Composite ML-DSA-44 + ECDSA-P256 (SEQUENCE of two BIT STRINGs,
    /// draft-ietf-lamps-pq-composite-sigs).
    CompositeP256MlDsa44,
    /// Composite ML-DSA-65 + ECDSA-P384.
    CompositeP384MlDsa65,
}

impl SignatureAlgorithm {
    /// Encode the AlgorithmIdentifier SEQUENCE.
    pub fn encode_algorithm_identifier(self) -> Vec<u8> {
        match self {
            // RSA algorithm identifiers carry an explicit NULL parameter.
            SignatureAlgorithm::Sha256WithRsa2048 => {
                der::sequence(&[oid::SHA256_WITH_RSA.encode(), der::null()])
            }
            SignatureAlgorithm::Sha384WithRsa4096 => {
                der::sequence(&[oid::SHA384_WITH_RSA.encode(), der::null()])
            }
            // ECDSA identifiers have absent parameters.
            SignatureAlgorithm::EcdsaSha256 => der::sequence(&[oid::ECDSA_WITH_SHA256.encode()]),
            SignatureAlgorithm::EcdsaSha384 => der::sequence(&[oid::ECDSA_WITH_SHA384.encode()]),
            // ML-DSA and composite identifiers also have absent parameters
            // (draft-ietf-lamps-dilithium-certificates §4).
            SignatureAlgorithm::MlDsa44 => der::sequence(&[oid::ML_DSA_44.encode()]),
            SignatureAlgorithm::MlDsa65 => der::sequence(&[oid::ML_DSA_65.encode()]),
            SignatureAlgorithm::CompositeP256MlDsa44 => {
                der::sequence(&[oid::COMPOSITE_MLDSA44_ECDSA_P256.encode()])
            }
            SignatureAlgorithm::CompositeP384MlDsa65 => {
                der::sequence(&[oid::COMPOSITE_MLDSA65_ECDSA_P384.encode()])
            }
        }
    }

    /// Produce a deterministic placeholder signature value with the exact
    /// size/structure of a real signature made with this algorithm.
    pub fn placeholder_signature(self, seed: u64) -> Vec<u8> {
        match self {
            SignatureAlgorithm::Sha256WithRsa2048 => deterministic_bytes(seed, 256),
            SignatureAlgorithm::Sha384WithRsa4096 => deterministic_bytes(seed, 512),
            SignatureAlgorithm::EcdsaSha256 => ecdsa_sig_value(seed, 32),
            SignatureAlgorithm::EcdsaSha384 => ecdsa_sig_value(seed, 48),
            // ML-DSA signatures are raw byte strings of fixed size; no
            // high-bit adjustment applies.
            SignatureAlgorithm::MlDsa44 => ml_dsa_sig_value(seed, ML_DSA_44_SIG_LEN),
            SignatureAlgorithm::MlDsa65 => ml_dsa_sig_value(seed, ML_DSA_65_SIG_LEN),
            // CompositeSignatureValue ::= SEQUENCE { BIT STRING, BIT STRING }
            // (ML-DSA first, then the classical component).
            SignatureAlgorithm::CompositeP256MlDsa44 => composite_sig_value(
                ml_dsa_sig_value(seed ^ 0x4D4C, ML_DSA_44_SIG_LEN),
                ecdsa_sig_value(seed, 32),
            ),
            SignatureAlgorithm::CompositeP384MlDsa65 => composite_sig_value(
                ml_dsa_sig_value(seed ^ 0x4D4C, ML_DSA_65_SIG_LEN),
                ecdsa_sig_value(seed, 48),
            ),
        }
    }

    /// Whether this signature contains a post-quantum component.
    pub fn is_post_quantum(self) -> bool {
        matches!(
            self,
            SignatureAlgorithm::MlDsa44
                | SignatureAlgorithm::MlDsa65
                | SignatureAlgorithm::CompositeP256MlDsa44
                | SignatureAlgorithm::CompositeP384MlDsa65
        )
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            SignatureAlgorithm::Sha256WithRsa2048 => "sha256WithRSAEncryption",
            SignatureAlgorithm::Sha384WithRsa4096 => "sha384WithRSAEncryption",
            SignatureAlgorithm::EcdsaSha256 => "ecdsa-with-SHA256",
            SignatureAlgorithm::EcdsaSha384 => "ecdsa-with-SHA384",
            SignatureAlgorithm::MlDsa44 => "id-ml-dsa-44",
            SignatureAlgorithm::MlDsa65 => "id-ml-dsa-65",
            SignatureAlgorithm::CompositeP256MlDsa44 => "MLDSA44-ECDSA-P256-SHA256",
            SignatureAlgorithm::CompositeP384MlDsa65 => "MLDSA65-ECDSA-P384-SHA384",
        }
    }
}

fn deterministic_bytes(seed: u64, n: usize) -> Vec<u8> {
    let mut v = vec![0u8; n];
    fill_deterministic(seed, &mut v);
    // An RSA signature is an integer below the modulus: clear the top bit so
    // the placeholder stays structurally plausible.
    if let Some(first) = v.first_mut() {
        *first &= 0x7F;
        *first |= 0x40;
    }
    v
}

/// An ML-DSA signature value: a raw byte string of the FIPS 204 size.
fn ml_dsa_sig_value(seed: u64, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    fill_deterministic(seed ^ 0x4D4C_4453_4121, &mut v);
    v
}

/// A composite signature value (draft-ietf-lamps-pq-composite-sigs):
/// SEQUENCE { mldsa BIT STRING, classical BIT STRING }.
fn composite_sig_value(mldsa: Vec<u8>, classical: Vec<u8>) -> Vec<u8> {
    der::sequence(&[der::bit_string(&mldsa, 0), der::bit_string(&classical, 0)])
}

/// An ECDSA signature value: SEQUENCE { r INTEGER, s INTEGER }. The high bit
/// of each scalar is cleared so no sign-padding byte is needed, giving the
/// canonical fixed size (2·(n+2)+2 bytes).
fn ecdsa_sig_value(seed: u64, scalar_len: usize) -> Vec<u8> {
    let mut r = vec![0u8; scalar_len];
    fill_deterministic(seed ^ 0x5252_5252, &mut r);
    r[0] = (r[0] & 0x7F) | 0x40;
    let mut s = vec![0u8; scalar_len];
    fill_deterministic(seed ^ 0x5353_5353, &mut s);
    s[0] = (s[0] & 0x7F) | 0x40;
    der::sequence(&[der::integer_bytes(&r), der::integer_bytes(&s)])
}

/// A subject public key: algorithm identifier plus placeholder key material
/// of exactly the right encoded size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubjectPublicKeyInfo {
    /// Key algorithm.
    pub algorithm: KeyAlgorithm,
    /// Deterministic seed the key bytes are derived from.
    pub seed: u64,
}

impl SubjectPublicKeyInfo {
    /// Create an SPKI for `algorithm` with key bytes derived from `seed`.
    pub fn new(algorithm: KeyAlgorithm, seed: u64) -> Self {
        SubjectPublicKeyInfo { algorithm, seed }
    }

    /// Encode the full SubjectPublicKeyInfo SEQUENCE.
    pub fn encode(&self) -> Vec<u8> {
        match self.algorithm {
            KeyAlgorithm::Rsa2048 | KeyAlgorithm::Rsa4096 => {
                let alg = der::sequence(&[oid::RSA_ENCRYPTION.encode(), der::null()]);
                let n_len = self.algorithm.key_bytes();
                let mut modulus = vec![0u8; n_len];
                fill_deterministic(self.seed, &mut modulus);
                // A real modulus has its top bit set (it is exactly n bits).
                modulus[0] |= 0x80;
                let rsa_key =
                    der::sequence(&[der::integer_bytes(&modulus), der::integer_u64(65537)]);
                let key_bits = der::bit_string(&rsa_key, 0);
                der::sequence(&[alg, key_bits])
            }
            KeyAlgorithm::EcdsaP256 | KeyAlgorithm::EcdsaP384 => {
                let curve = match self.algorithm {
                    KeyAlgorithm::EcdsaP256 => oid::PRIME256V1.encode(),
                    _ => oid::SECP384R1.encode(),
                };
                let alg = der::sequence(&[oid::EC_PUBLIC_KEY.encode(), curve]);
                // Uncompressed point: 0x04 || X || Y.
                let coord = self.algorithm.key_bytes();
                let mut point = vec![0u8; 1 + 2 * coord];
                fill_deterministic(self.seed, &mut point);
                point[0] = 0x04;
                let key_bits = der::bit_string(&point, 0);
                der::sequence(&[alg, key_bits])
            }
            KeyAlgorithm::MlDsa44 | KeyAlgorithm::MlDsa65 => {
                // ML-DSA SPKI: AlgorithmIdentifier with absent parameters,
                // subjectPublicKey = the raw FIPS 204 public key.
                let alg_oid = match self.algorithm {
                    KeyAlgorithm::MlDsa44 => oid::ML_DSA_44.encode(),
                    _ => oid::ML_DSA_65.encode(),
                };
                let alg = der::sequence(&[alg_oid]);
                let mut pk = vec![0u8; self.algorithm.key_bytes()];
                fill_deterministic(self.seed, &mut pk);
                der::sequence(&[alg, der::bit_string(&pk, 0)])
            }
            KeyAlgorithm::HybridP256MlDsa44 | KeyAlgorithm::HybridP384MlDsa65 => {
                // CompositeSignaturePublicKey ::= SEQUENCE { BIT STRING,
                // BIT STRING } (ML-DSA key first, then the EC point),
                // wrapped in the SPKI subjectPublicKey BIT STRING.
                let (alg_oid, mldsa_len, coord) = match self.algorithm {
                    KeyAlgorithm::HybridP256MlDsa44 => (
                        oid::COMPOSITE_MLDSA44_ECDSA_P256.encode(),
                        ML_DSA_44_PK_LEN,
                        32,
                    ),
                    _ => (
                        oid::COMPOSITE_MLDSA65_ECDSA_P384.encode(),
                        ML_DSA_65_PK_LEN,
                        48,
                    ),
                };
                let alg = der::sequence(&[alg_oid]);
                let mut mldsa_pk = vec![0u8; mldsa_len];
                fill_deterministic(self.seed ^ 0x004D_4C4B_4559, &mut mldsa_pk);
                let mut point = vec![0u8; 1 + 2 * coord];
                fill_deterministic(self.seed, &mut point);
                point[0] = 0x04;
                let composite =
                    der::sequence(&[der::bit_string(&mldsa_pk, 0), der::bit_string(&point, 0)]);
                der::sequence(&[alg, der::bit_string(&composite, 0)])
            }
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::der::parse_one;

    #[test]
    fn spki_sizes_match_real_world_values() {
        // Reference sizes from real certificates (openssl asn1parse).
        assert_eq!(
            SubjectPublicKeyInfo::new(KeyAlgorithm::Rsa2048, 1).encoded_len(),
            294
        );
        assert_eq!(
            SubjectPublicKeyInfo::new(KeyAlgorithm::Rsa4096, 1).encoded_len(),
            550
        );
        assert_eq!(
            SubjectPublicKeyInfo::new(KeyAlgorithm::EcdsaP256, 1).encoded_len(),
            91
        );
        assert_eq!(
            SubjectPublicKeyInfo::new(KeyAlgorithm::EcdsaP384, 1).encoded_len(),
            120
        );
    }

    #[test]
    fn spki_is_wellformed_der() {
        for alg in KeyAlgorithm::ALL_ERAS {
            let spki = SubjectPublicKeyInfo::new(alg, 99).encode();
            let parsed = parse_one(&spki).unwrap();
            let children = parsed.children().unwrap();
            assert_eq!(children.len(), 2, "{alg:?}: AlgId + BIT STRING");
            assert_eq!(children[1].tag, 0x03);
        }
    }

    #[test]
    fn ml_dsa_spki_carries_the_fips_204_key_sizes() {
        // The subjectPublicKey BIT STRING holds exactly the raw key (plus
        // the unused-bits prefix octet).
        for (alg, pk_len) in [
            (KeyAlgorithm::MlDsa44, ML_DSA_44_PK_LEN),
            (KeyAlgorithm::MlDsa65, ML_DSA_65_PK_LEN),
        ] {
            let spki = SubjectPublicKeyInfo::new(alg, 5).encode();
            let children = parse_one(&spki).unwrap().children().unwrap();
            assert_eq!(children[1].content.len(), 1 + pk_len, "{alg:?}");
        }
        // Composite SPKIs nest a SEQUENCE of two BIT STRINGs.
        for (alg, mldsa_len, point_len) in [
            (KeyAlgorithm::HybridP256MlDsa44, ML_DSA_44_PK_LEN, 65),
            (KeyAlgorithm::HybridP384MlDsa65, ML_DSA_65_PK_LEN, 97),
        ] {
            let spki = SubjectPublicKeyInfo::new(alg, 5).encode();
            let children = parse_one(&spki).unwrap().children().unwrap();
            let inner = parse_one(&children[1].content[1..]).unwrap();
            let parts = inner.children().unwrap();
            assert_eq!(parts.len(), 2, "{alg:?}");
            assert_eq!(parts[0].content.len(), 1 + mldsa_len, "{alg:?}");
            assert_eq!(parts[1].content.len(), 1 + point_len, "{alg:?}");
        }
    }

    #[test]
    fn ml_dsa_signature_sizes_match_fips_204() {
        assert_eq!(
            SignatureAlgorithm::MlDsa44.placeholder_signature(5).len(),
            ML_DSA_44_SIG_LEN
        );
        assert_eq!(
            SignatureAlgorithm::MlDsa65.placeholder_signature(5).len(),
            ML_DSA_65_SIG_LEN
        );
        // The composite signature wraps both components in DER framing, so
        // it is slightly larger than the sum of the raw signatures.
        let composite = SignatureAlgorithm::CompositeP256MlDsa44
            .placeholder_signature(5)
            .len();
        assert!(composite > ML_DSA_44_SIG_LEN + 70, "{composite}");
        assert!(composite < ML_DSA_44_SIG_LEN + 70 + 24, "{composite}");
        let parts = parse_one(&SignatureAlgorithm::CompositeP384MlDsa65.placeholder_signature(6))
            .unwrap()
            .children()
            .unwrap();
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(|p| p.tag == 0x03));
    }

    #[test]
    fn pq_spki_sizes_dwarf_classical_ones() {
        // The crux of the era axis: the SPKI alone is an order of magnitude
        // bigger than the ECDSA keys that dominate today's QUIC population.
        let p256 = SubjectPublicKeyInfo::new(KeyAlgorithm::EcdsaP256, 1).encoded_len();
        let mldsa44 = SubjectPublicKeyInfo::new(KeyAlgorithm::MlDsa44, 1).encoded_len();
        let hybrid = SubjectPublicKeyInfo::new(KeyAlgorithm::HybridP256MlDsa44, 1).encoded_len();
        assert!(mldsa44 > 10 * p256, "{mldsa44} vs {p256}");
        assert!(hybrid > mldsa44, "{hybrid} vs {mldsa44}");
    }

    #[test]
    fn pq_flags_and_labels() {
        assert!(KeyAlgorithm::MlDsa44.is_post_quantum());
        assert!(KeyAlgorithm::HybridP384MlDsa65.is_post_quantum());
        assert!(KeyAlgorithm::HybridP256MlDsa44.is_hybrid());
        assert!(!KeyAlgorithm::MlDsa65.is_hybrid());
        assert!(!KeyAlgorithm::EcdsaP256.is_post_quantum());
        assert!(SignatureAlgorithm::MlDsa44.is_post_quantum());
        assert!(!SignatureAlgorithm::EcdsaSha256.is_post_quantum());
        assert_eq!(KeyAlgorithm::MlDsa65.label(), "ML-DSA-65");
        assert_eq!(
            KeyAlgorithm::HybridP256MlDsa44.label(),
            "ECDSA-256+ML-DSA-44"
        );
        for alg in KeyAlgorithm::POST_QUANTUM {
            assert!(alg.signature_algorithm().is_post_quantum(), "{alg:?}");
        }
    }

    #[test]
    fn signature_sizes_match_real_world_values() {
        assert_eq!(
            SignatureAlgorithm::Sha256WithRsa2048
                .placeholder_signature(5)
                .len(),
            256
        );
        assert_eq!(
            SignatureAlgorithm::Sha384WithRsa4096
                .placeholder_signature(5)
                .len(),
            512
        );
        // Canonical ECDSA DER size with sign-bit-free scalars.
        assert_eq!(
            SignatureAlgorithm::EcdsaSha256
                .placeholder_signature(5)
                .len(),
            70
        );
        assert_eq!(
            SignatureAlgorithm::EcdsaSha384
                .placeholder_signature(5)
                .len(),
            102
        );
    }

    #[test]
    fn signatures_are_deterministic_per_seed() {
        let a = SignatureAlgorithm::EcdsaSha256.placeholder_signature(7);
        let b = SignatureAlgorithm::EcdsaSha256.placeholder_signature(7);
        let c = SignatureAlgorithm::EcdsaSha256.placeholder_signature(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ecdsa_signature_parses_as_two_integers() {
        let sig = SignatureAlgorithm::EcdsaSha384.placeholder_signature(3);
        let parsed = parse_one(&sig).unwrap();
        let ints = parsed.children().unwrap();
        assert_eq!(ints.len(), 2);
        assert!(ints.iter().all(|i| i.tag == 0x02));
        assert!(ints.iter().all(|i| i.content.len() == 48));
    }

    #[test]
    fn algorithm_identifier_parameter_conventions() {
        // RSA: NULL params present.
        let rsa = SignatureAlgorithm::Sha256WithRsa2048.encode_algorithm_identifier();
        let rsa_children = parse_one(&rsa).unwrap().children().unwrap();
        assert_eq!(rsa_children.len(), 2);
        assert_eq!(rsa_children[1].tag, 0x05);
        // ECDSA: params absent.
        let ec = SignatureAlgorithm::EcdsaSha256.encode_algorithm_identifier();
        let ec_children = parse_one(&ec).unwrap().children().unwrap();
        assert_eq!(ec_children.len(), 1);
    }

    #[test]
    fn table2_labels() {
        assert_eq!(KeyAlgorithm::Rsa2048.label(), "RSA-2048");
        assert_eq!(KeyAlgorithm::EcdsaP384.label(), "ECDSA-384");
        assert!(KeyAlgorithm::Rsa4096.is_rsa());
        assert!(!KeyAlgorithm::EcdsaP256.is_rsa());
    }
}
