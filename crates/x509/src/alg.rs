//! Public-key and signature algorithms.
//!
//! Table 2 of the paper reports the algorithm/key-length mix in the wild
//! (RSA-2048/4096, ECDSA P-256/P-384); the byte-size consequences of that
//! choice drive Figures 6–8. This module encodes SubjectPublicKeyInfo and
//! signature values with exactly the DER layout (and therefore exactly the
//! sizes) of the real algorithms.

use crate::der;
use crate::fill_deterministic;
use crate::oid;

/// Public-key algorithm and key length.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KeyAlgorithm {
    /// RSA with a 2048-bit modulus.
    Rsa2048,
    /// RSA with a 4096-bit modulus.
    Rsa4096,
    /// ECDSA on P-256 (prime256v1).
    EcdsaP256,
    /// ECDSA on P-384 (secp384r1).
    EcdsaP384,
}

impl KeyAlgorithm {
    /// All supported algorithms, in Table 2 column order.
    pub const ALL: [KeyAlgorithm; 4] = [
        KeyAlgorithm::Rsa2048,
        KeyAlgorithm::Rsa4096,
        KeyAlgorithm::EcdsaP256,
        KeyAlgorithm::EcdsaP384,
    ];

    /// Human-readable label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            KeyAlgorithm::Rsa2048 => "RSA-2048",
            KeyAlgorithm::Rsa4096 => "RSA-4096",
            KeyAlgorithm::EcdsaP256 => "ECDSA-256",
            KeyAlgorithm::EcdsaP384 => "ECDSA-384",
        }
    }

    /// Whether this is an RSA variant.
    pub fn is_rsa(self) -> bool {
        matches!(self, KeyAlgorithm::Rsa2048 | KeyAlgorithm::Rsa4096)
    }

    /// The modulus / field size in bytes.
    pub fn key_bytes(self) -> usize {
        match self {
            KeyAlgorithm::Rsa2048 => 256,
            KeyAlgorithm::Rsa4096 => 512,
            KeyAlgorithm::EcdsaP256 => 32,
            KeyAlgorithm::EcdsaP384 => 48,
        }
    }

    /// The signature algorithm a CA holding this key signs with.
    pub fn signature_algorithm(self) -> SignatureAlgorithm {
        match self {
            KeyAlgorithm::Rsa2048 => SignatureAlgorithm::Sha256WithRsa2048,
            KeyAlgorithm::Rsa4096 => SignatureAlgorithm::Sha384WithRsa4096,
            KeyAlgorithm::EcdsaP256 => SignatureAlgorithm::EcdsaSha256,
            KeyAlgorithm::EcdsaP384 => SignatureAlgorithm::EcdsaSha384,
        }
    }
}

/// A signature algorithm (hash + key flavour), as it appears both in the
/// `signatureAlgorithm` field and in the signature value size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SignatureAlgorithm {
    /// sha256WithRSAEncryption over a 2048-bit key (256-byte signature).
    Sha256WithRsa2048,
    /// sha384WithRSAEncryption over a 4096-bit key (512-byte signature).
    Sha384WithRsa4096,
    /// ecdsa-with-SHA256 (DER-encoded r/s pair, ~70 bytes).
    EcdsaSha256,
    /// ecdsa-with-SHA384 (DER-encoded r/s pair, ~102 bytes).
    EcdsaSha384,
}

impl SignatureAlgorithm {
    /// Encode the AlgorithmIdentifier SEQUENCE.
    pub fn encode_algorithm_identifier(self) -> Vec<u8> {
        match self {
            // RSA algorithm identifiers carry an explicit NULL parameter.
            SignatureAlgorithm::Sha256WithRsa2048 => {
                der::sequence(&[oid::SHA256_WITH_RSA.encode(), der::null()])
            }
            SignatureAlgorithm::Sha384WithRsa4096 => {
                der::sequence(&[oid::SHA384_WITH_RSA.encode(), der::null()])
            }
            // ECDSA identifiers have absent parameters.
            SignatureAlgorithm::EcdsaSha256 => der::sequence(&[oid::ECDSA_WITH_SHA256.encode()]),
            SignatureAlgorithm::EcdsaSha384 => der::sequence(&[oid::ECDSA_WITH_SHA384.encode()]),
        }
    }

    /// Produce a deterministic placeholder signature value with the exact
    /// size/structure of a real signature made with this algorithm.
    pub fn placeholder_signature(self, seed: u64) -> Vec<u8> {
        match self {
            SignatureAlgorithm::Sha256WithRsa2048 => deterministic_bytes(seed, 256),
            SignatureAlgorithm::Sha384WithRsa4096 => deterministic_bytes(seed, 512),
            SignatureAlgorithm::EcdsaSha256 => ecdsa_sig_value(seed, 32),
            SignatureAlgorithm::EcdsaSha384 => ecdsa_sig_value(seed, 48),
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            SignatureAlgorithm::Sha256WithRsa2048 => "sha256WithRSAEncryption",
            SignatureAlgorithm::Sha384WithRsa4096 => "sha384WithRSAEncryption",
            SignatureAlgorithm::EcdsaSha256 => "ecdsa-with-SHA256",
            SignatureAlgorithm::EcdsaSha384 => "ecdsa-with-SHA384",
        }
    }
}

fn deterministic_bytes(seed: u64, n: usize) -> Vec<u8> {
    let mut v = vec![0u8; n];
    fill_deterministic(seed, &mut v);
    // An RSA signature is an integer below the modulus: clear the top bit so
    // the placeholder stays structurally plausible.
    if let Some(first) = v.first_mut() {
        *first &= 0x7F;
        *first |= 0x40;
    }
    v
}

/// An ECDSA signature value: SEQUENCE { r INTEGER, s INTEGER }. The high bit
/// of each scalar is cleared so no sign-padding byte is needed, giving the
/// canonical fixed size (2·(n+2)+2 bytes).
fn ecdsa_sig_value(seed: u64, scalar_len: usize) -> Vec<u8> {
    let mut r = vec![0u8; scalar_len];
    fill_deterministic(seed ^ 0x5252_5252, &mut r);
    r[0] = (r[0] & 0x7F) | 0x40;
    let mut s = vec![0u8; scalar_len];
    fill_deterministic(seed ^ 0x5353_5353, &mut s);
    s[0] = (s[0] & 0x7F) | 0x40;
    der::sequence(&[der::integer_bytes(&r), der::integer_bytes(&s)])
}

/// A subject public key: algorithm identifier plus placeholder key material
/// of exactly the right encoded size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubjectPublicKeyInfo {
    /// Key algorithm.
    pub algorithm: KeyAlgorithm,
    /// Deterministic seed the key bytes are derived from.
    pub seed: u64,
}

impl SubjectPublicKeyInfo {
    /// Create an SPKI for `algorithm` with key bytes derived from `seed`.
    pub fn new(algorithm: KeyAlgorithm, seed: u64) -> Self {
        SubjectPublicKeyInfo { algorithm, seed }
    }

    /// Encode the full SubjectPublicKeyInfo SEQUENCE.
    pub fn encode(&self) -> Vec<u8> {
        match self.algorithm {
            KeyAlgorithm::Rsa2048 | KeyAlgorithm::Rsa4096 => {
                let alg = der::sequence(&[oid::RSA_ENCRYPTION.encode(), der::null()]);
                let n_len = self.algorithm.key_bytes();
                let mut modulus = vec![0u8; n_len];
                fill_deterministic(self.seed, &mut modulus);
                // A real modulus has its top bit set (it is exactly n bits).
                modulus[0] |= 0x80;
                let rsa_key =
                    der::sequence(&[der::integer_bytes(&modulus), der::integer_u64(65537)]);
                let key_bits = der::bit_string(&rsa_key, 0);
                der::sequence(&[alg, key_bits])
            }
            KeyAlgorithm::EcdsaP256 | KeyAlgorithm::EcdsaP384 => {
                let curve = match self.algorithm {
                    KeyAlgorithm::EcdsaP256 => oid::PRIME256V1.encode(),
                    _ => oid::SECP384R1.encode(),
                };
                let alg = der::sequence(&[oid::EC_PUBLIC_KEY.encode(), curve]);
                // Uncompressed point: 0x04 || X || Y.
                let coord = self.algorithm.key_bytes();
                let mut point = vec![0u8; 1 + 2 * coord];
                fill_deterministic(self.seed, &mut point);
                point[0] = 0x04;
                let key_bits = der::bit_string(&point, 0);
                der::sequence(&[alg, key_bits])
            }
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::der::parse_one;

    #[test]
    fn spki_sizes_match_real_world_values() {
        // Reference sizes from real certificates (openssl asn1parse).
        assert_eq!(
            SubjectPublicKeyInfo::new(KeyAlgorithm::Rsa2048, 1).encoded_len(),
            294
        );
        assert_eq!(
            SubjectPublicKeyInfo::new(KeyAlgorithm::Rsa4096, 1).encoded_len(),
            550
        );
        assert_eq!(
            SubjectPublicKeyInfo::new(KeyAlgorithm::EcdsaP256, 1).encoded_len(),
            91
        );
        assert_eq!(
            SubjectPublicKeyInfo::new(KeyAlgorithm::EcdsaP384, 1).encoded_len(),
            120
        );
    }

    #[test]
    fn spki_is_wellformed_der() {
        for alg in KeyAlgorithm::ALL {
            let spki = SubjectPublicKeyInfo::new(alg, 99).encode();
            let parsed = parse_one(&spki).unwrap();
            let children = parsed.children().unwrap();
            assert_eq!(children.len(), 2, "{alg:?}: AlgId + BIT STRING");
            assert_eq!(children[1].tag, 0x03);
        }
    }

    #[test]
    fn signature_sizes_match_real_world_values() {
        assert_eq!(
            SignatureAlgorithm::Sha256WithRsa2048
                .placeholder_signature(5)
                .len(),
            256
        );
        assert_eq!(
            SignatureAlgorithm::Sha384WithRsa4096
                .placeholder_signature(5)
                .len(),
            512
        );
        // Canonical ECDSA DER size with sign-bit-free scalars.
        assert_eq!(
            SignatureAlgorithm::EcdsaSha256
                .placeholder_signature(5)
                .len(),
            70
        );
        assert_eq!(
            SignatureAlgorithm::EcdsaSha384
                .placeholder_signature(5)
                .len(),
            102
        );
    }

    #[test]
    fn signatures_are_deterministic_per_seed() {
        let a = SignatureAlgorithm::EcdsaSha256.placeholder_signature(7);
        let b = SignatureAlgorithm::EcdsaSha256.placeholder_signature(7);
        let c = SignatureAlgorithm::EcdsaSha256.placeholder_signature(8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ecdsa_signature_parses_as_two_integers() {
        let sig = SignatureAlgorithm::EcdsaSha384.placeholder_signature(3);
        let parsed = parse_one(&sig).unwrap();
        let ints = parsed.children().unwrap();
        assert_eq!(ints.len(), 2);
        assert!(ints.iter().all(|i| i.tag == 0x02));
        assert!(ints.iter().all(|i| i.content.len() == 48));
    }

    #[test]
    fn algorithm_identifier_parameter_conventions() {
        // RSA: NULL params present.
        let rsa = SignatureAlgorithm::Sha256WithRsa2048.encode_algorithm_identifier();
        let rsa_children = parse_one(&rsa).unwrap().children().unwrap();
        assert_eq!(rsa_children.len(), 2);
        assert_eq!(rsa_children[1].tag, 0x05);
        // ECDSA: params absent.
        let ec = SignatureAlgorithm::EcdsaSha256.encode_algorithm_identifier();
        let ec_children = parse_one(&ec).unwrap().children().unwrap();
        assert_eq!(ec_children.len(), 1);
    }

    #[test]
    fn table2_labels() {
        assert_eq!(KeyAlgorithm::Rsa2048.label(), "RSA-2048");
        assert_eq!(KeyAlgorithm::EcdsaP384.label(), "ECDSA-384");
        assert!(KeyAlgorithm::Rsa4096.is_rsa());
        assert!(!KeyAlgorithm::EcdsaP256.is_rsa());
    }
}
