//! X.509 v3 certificates.
//!
//! A [`Certificate`] mirrors the structure in Figure 2(a) of the paper:
//! a `tbsCertificate` (version, serial, signature algorithm, issuer,
//! validity, subject, subjectPublicKeyInfo, extensions), the outer
//! signature algorithm, and the signature value. [`Certificate::field_sizes`]
//! attributes the encoded bytes to the field groups that the paper's
//! Figures 2(b) and 8 report on.

use crate::alg::{SignatureAlgorithm, SubjectPublicKeyInfo};
use crate::der;
use crate::ext::{encode_extensions, Extension};
use crate::name::DistinguishedName;
use crate::time::Time;

/// A certificate validity period.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Validity {
    /// notBefore.
    pub not_before: Time,
    /// notAfter.
    pub not_after: Time,
}

impl Validity {
    /// A validity window starting at `from` and lasting `days`.
    pub fn days(from: Time, days: u32) -> Self {
        Validity {
            not_before: from,
            not_after: from.plus_days(days),
        }
    }

    /// DER-encode the validity SEQUENCE.
    pub fn encode(&self) -> Vec<u8> {
        der::sequence(&[self.not_before.encode(), self.not_after.encode()])
    }
}

/// The to-be-signed portion of a certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TbsCertificate {
    /// Serial number bytes (big-endian magnitude; CAs use 16–20 bytes).
    pub serial: Vec<u8>,
    /// Signature algorithm (must match the outer algorithm).
    pub signature_alg: SignatureAlgorithm,
    /// Issuer distinguished name.
    pub issuer: DistinguishedName,
    /// Validity period.
    pub validity: Validity,
    /// Subject distinguished name.
    pub subject: DistinguishedName,
    /// Subject public key.
    pub spki: SubjectPublicKeyInfo,
    /// v3 extensions.
    pub extensions: Vec<Extension>,
}

impl TbsCertificate {
    /// DER-encode the TBSCertificate SEQUENCE.
    pub fn encode(&self) -> Vec<u8> {
        let mut children = Vec::with_capacity(8);
        // version [0] EXPLICIT INTEGER 2 (v3)
        children.push(der::context(0, true, &der::integer_u64(2)));
        children.push(der::integer_bytes(&self.serial));
        children.push(self.signature_alg.encode_algorithm_identifier());
        children.push(self.issuer.encode());
        children.push(self.validity.encode());
        children.push(self.subject.encode());
        children.push(self.spki.encode());
        if !self.extensions.is_empty() {
            children.push(encode_extensions(&self.extensions));
        }
        der::sequence(&children)
    }
}

/// Byte attribution of a certificate to the field groups of Fig 2(b)/Fig 8.
///
/// `other` covers version, serial, validity and both algorithm identifiers;
/// all counts include each field's own DER tag/length framing. The sum of
/// all fields equals the encoded certificate size minus the outer
/// SEQUENCE/TBS framing bytes, which are accounted in `other` as well.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FieldSizes {
    /// Subject distinguished name bytes.
    pub subject: usize,
    /// Issuer distinguished name bytes.
    pub issuer: usize,
    /// SubjectPublicKeyInfo bytes.
    pub spki: usize,
    /// All extension bytes (including the `[3]` wrapper).
    pub extensions: usize,
    /// Outer signature algorithm + signature value bytes.
    pub signature: usize,
    /// Everything else (version, serial, validity, inner alg id, framing).
    pub other: usize,
}

impl FieldSizes {
    /// Total certificate size.
    pub fn total(&self) -> usize {
        self.subject + self.issuer + self.spki + self.extensions + self.signature + self.other
    }
}

/// A complete, encoded X.509 certificate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The to-be-signed body.
    pub tbs: TbsCertificate,
    /// Outer signature algorithm (equals `tbs.signature_alg`).
    pub signature_alg: SignatureAlgorithm,
    /// Raw signature value bytes (placed in a BIT STRING).
    pub signature: Vec<u8>,
    /// Cached DER encoding.
    encoded: Vec<u8>,
}

impl Certificate {
    /// Assemble and encode a certificate from its TBS body and signature.
    pub fn assemble(tbs: TbsCertificate, signature: Vec<u8>) -> Self {
        let signature_alg = tbs.signature_alg;
        let encoded = der::sequence(&[
            tbs.encode(),
            signature_alg.encode_algorithm_identifier(),
            der::bit_string(&signature, 0),
        ]);
        Certificate {
            tbs,
            signature_alg,
            signature,
            encoded,
        }
    }

    /// The cached DER encoding of the full certificate.
    pub fn der(&self) -> &[u8] {
        &self.encoded
    }

    /// Encoded size in bytes.
    pub fn der_len(&self) -> usize {
        self.encoded.len()
    }

    /// Whether this certificate is self-signed (subject == issuer), i.e. a
    /// trust anchor as distributed in root stores.
    pub fn is_self_signed(&self) -> bool {
        self.tbs.subject == self.tbs.issuer
    }

    /// Whether the certificate carries `basicConstraints CA:TRUE`.
    pub fn is_ca(&self) -> bool {
        self.tbs
            .extensions
            .iter()
            .any(|e| matches!(e, Extension::BasicConstraints { ca: true, .. }))
    }

    /// Bytes used by the subjectAltName extension (Fig 14).
    pub fn san_bytes(&self) -> usize {
        self.tbs.extensions.iter().map(|e| e.san_bytes()).sum()
    }

    /// Number of subjectAltName entries.
    pub fn san_count(&self) -> usize {
        self.tbs
            .extensions
            .iter()
            .filter_map(|e| match e {
                Extension::SubjectAltNames(names) => Some(names.len()),
                _ => None,
            })
            .sum()
    }

    /// Attribute encoded bytes to the field groups of Fig 2(b).
    pub fn field_sizes(&self) -> FieldSizes {
        let subject = self.tbs.subject.encoded_len();
        let issuer = self.tbs.issuer.encoded_len();
        let spki = self.tbs.spki.encoded_len();
        let extensions = if self.tbs.extensions.is_empty() {
            0
        } else {
            encode_extensions(&self.tbs.extensions).len()
        };
        let signature = self.signature_alg.encode_algorithm_identifier().len()
            + der::bit_string(&self.signature, 0).len();
        let total = self.der_len();
        let other = total - subject - issuer - spki - extensions - signature;
        FieldSizes {
            subject,
            issuer,
            spki,
            extensions,
            signature,
            other,
        }
    }
}

/// Ergonomic builder for certificates with placeholder key material.
#[derive(Debug, Clone)]
pub struct CertificateBuilder {
    serial_seed: u64,
    issuer: DistinguishedName,
    subject: DistinguishedName,
    validity: Validity,
    spki: SubjectPublicKeyInfo,
    signature_alg: SignatureAlgorithm,
    extensions: Vec<Extension>,
}

impl CertificateBuilder {
    /// Start building a certificate for `subject` with the given key,
    /// signed by `issuer` using `signature_alg`.
    pub fn new(
        issuer: DistinguishedName,
        subject: DistinguishedName,
        spki: SubjectPublicKeyInfo,
        signature_alg: SignatureAlgorithm,
    ) -> Self {
        CertificateBuilder {
            serial_seed: spki.seed,
            issuer,
            subject,
            validity: Validity::days(Time::date(2022, 3, 1), 90),
            spki,
            signature_alg,
            extensions: Vec::new(),
        }
    }

    /// Override the serial-number seed.
    pub fn serial_seed(mut self, seed: u64) -> Self {
        self.serial_seed = seed;
        self
    }

    /// Set the validity period.
    pub fn validity(mut self, validity: Validity) -> Self {
        self.validity = validity;
        self
    }

    /// Append an extension.
    pub fn extension(mut self, ext: Extension) -> Self {
        self.extensions.push(ext);
        self
    }

    /// Append several extensions.
    pub fn extensions(mut self, exts: impl IntoIterator<Item = Extension>) -> Self {
        self.extensions.extend(exts);
        self
    }

    /// Derive the 16-byte serial magnitude used by [`build`](Self::build)
    /// for a given serial seed.
    fn derive_serial(serial_seed: u64) -> Vec<u8> {
        let mut serial = vec![0u8; 16];
        crate::fill_deterministic(serial_seed ^ 0x5E51_A11E, &mut serial);
        serial[0] &= 0x7F; // keep the serial positive without padding
        serial
    }

    /// Encoded DER length of the serial `INTEGER` a builder with this
    /// serial seed would emit, without building the certificate.
    ///
    /// The serial is the only seed-dependent *length* in a built
    /// certificate: `integer_bytes` trims leading zero octets of the
    /// masked 16-byte magnitude, so a small fraction of seeds encode one
    /// or more bytes shorter. Everything else (SPKI, signature, SCTs,
    /// names sized by their inputs) is length-stable per algorithm.
    /// Allocation-free: mirrors `der::integer_bytes` arithmetic (trim
    /// leading zero octets while the sign stays positive, pad when the
    /// top bit is set, two header bytes for the ≤17-byte content) so the
    /// million-record scan path can call it per record. The mirror is
    /// pinned against the real encoder by `serial_der_len_matches_built_
    /// certificates`.
    pub fn serial_der_len(serial_seed: u64) -> usize {
        let mut serial = [0u8; 16];
        crate::fill_deterministic(serial_seed ^ 0x5E51_A11E, &mut serial);
        serial[0] &= 0x7F;
        let mut m: &[u8] = &serial;
        while m.len() > 1 && m[0] == 0 && m[1] & 0x80 == 0 {
            m = &m[1..];
        }
        let content = m.len() + usize::from(m[0] & 0x80 != 0);
        2 + content
    }

    /// Build the certificate, deriving a 16-byte serial and a placeholder
    /// signature of the correct algorithm-specific size.
    pub fn build(self) -> Certificate {
        let serial = Self::derive_serial(self.serial_seed);
        let tbs = TbsCertificate {
            serial,
            signature_alg: self.signature_alg,
            issuer: self.issuer,
            validity: self.validity,
            subject: self.subject,
            spki: self.spki,
            extensions: self.extensions,
        };
        let signature = self
            .signature_alg
            .placeholder_signature(self.serial_seed ^ 0x51_6E41);
        Certificate::assemble(tbs, signature)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::KeyAlgorithm;
    use crate::der::parse_one;
    use crate::ext::KeyUsageFlags;
    use crate::oid;

    fn leaf() -> Certificate {
        CertificateBuilder::new(
            DistinguishedName::ca("US", "Let's Encrypt", "R3"),
            DistinguishedName::cn("*.isc.org"),
            SubjectPublicKeyInfo::new(KeyAlgorithm::EcdsaP256, 42),
            SignatureAlgorithm::Sha256WithRsa2048,
        )
        .extension(Extension::BasicConstraints {
            ca: false,
            path_len: None,
        })
        .extension(Extension::KeyUsage(KeyUsageFlags::leaf()))
        .extension(Extension::ExtKeyUsage(vec![oid::KP_SERVER_AUTH]))
        .extension(Extension::SubjectKeyId { seed: 1 })
        .extension(Extension::AuthorityKeyId { seed: 2 })
        .extension(Extension::SubjectAltNames(vec![
            "*.isc.org".into(),
            "isc.org".into(),
        ]))
        .extension(Extension::AuthorityInfoAccess {
            ocsp: Some("http://r3.o.lencr.org".into()),
            ca_issuers: Some("http://r3.i.lencr.org/".into()),
        })
        .extension(Extension::CertificatePolicies(vec![
            oid::CP_DOMAIN_VALIDATED,
        ]))
        .extension(Extension::SctList { count: 2, seed: 3 })
        .build()
    }

    #[test]
    fn certificate_is_wellformed_der() {
        let cert = leaf();
        let parsed = parse_one(cert.der()).unwrap();
        let parts = parsed.children().unwrap();
        assert_eq!(parts.len(), 3, "tbs + alg + signature");
        assert_eq!(parts[0].tag, 0x30);
        assert_eq!(parts[1].tag, 0x30);
        assert_eq!(parts[2].tag, 0x03);
        // TBS has 8 children: version..extensions.
        assert_eq!(parts[0].children().unwrap().len(), 8);
    }

    #[test]
    fn leaf_size_is_realistic() {
        // A modern ECDSA DV leaf with 2 SANs + 2 SCTs is ~1.0–1.3 kB.
        let len = leaf().der_len();
        assert!((850..=1400).contains(&len), "leaf size was {len}");
    }

    #[test]
    fn field_sizes_sum_to_total() {
        let cert = leaf();
        let sizes = cert.field_sizes();
        assert_eq!(sizes.total(), cert.der_len());
        assert!(sizes.extensions > sizes.subject);
        assert!(sizes.signature >= 256, "RSA-2048 signature dominates");
    }

    #[test]
    fn self_signed_and_ca_detection() {
        let root_dn =
            DistinguishedName::ca("US", "Internet Security Research Group", "ISRG Root X1");
        let root = CertificateBuilder::new(
            root_dn.clone(),
            root_dn,
            SubjectPublicKeyInfo::new(KeyAlgorithm::Rsa4096, 7),
            SignatureAlgorithm::Sha384WithRsa4096,
        )
        .extension(Extension::BasicConstraints {
            ca: true,
            path_len: None,
        })
        .extension(Extension::KeyUsage(KeyUsageFlags::ca()))
        .build();
        assert!(root.is_self_signed());
        assert!(root.is_ca());
        let leaf = leaf();
        assert!(!leaf.is_self_signed());
        assert!(!leaf.is_ca());
    }

    #[test]
    fn san_accounting() {
        let cert = leaf();
        assert_eq!(cert.san_count(), 2);
        assert!(cert.san_bytes() > 20);
        assert!(cert.san_bytes() < 60);
    }

    #[test]
    fn key_algorithm_changes_size_as_expected() {
        let mk = |alg| {
            CertificateBuilder::new(
                DistinguishedName::ca("US", "CA", "X"),
                DistinguishedName::cn("example.org"),
                SubjectPublicKeyInfo::new(alg, 1),
                SignatureAlgorithm::Sha256WithRsa2048,
            )
            .build()
            .der_len()
        };
        let rsa2048 = mk(KeyAlgorithm::Rsa2048);
        let rsa4096 = mk(KeyAlgorithm::Rsa4096);
        let p256 = mk(KeyAlgorithm::EcdsaP256);
        assert!(rsa4096 > rsa2048 + 200);
        assert!(rsa2048 > p256 + 150);
    }

    #[test]
    fn build_is_deterministic() {
        assert_eq!(leaf().der(), leaf().der());
    }

    #[test]
    fn signature_algorithms_match_inner_and_outer() {
        let cert = leaf();
        assert_eq!(cert.tbs.signature_alg, cert.signature_alg);
    }

    #[test]
    fn serial_der_len_matches_built_certificates() {
        let mut trimmed = 0usize;
        for seed in 0..4096u64 {
            let cert = CertificateBuilder::new(
                DistinguishedName::ca("US", "CA", "X"),
                DistinguishedName::cn("example.org"),
                SubjectPublicKeyInfo::new(KeyAlgorithm::EcdsaP256, seed),
                SignatureAlgorithm::EcdsaSha256,
            )
            .build();
            let predicted = CertificateBuilder::serial_der_len(seed);
            let encoded = der::integer_bytes(&cert.tbs.serial).len();
            assert_eq!(predicted, encoded, "seed {seed}");
            // Full 16-byte magnitude => tag + len + 16.
            if predicted < 18 {
                trimmed += 1;
            }
        }
        // Leading-zero trimming must be rare but present: the predictor
        // only earns its keep if lengths actually vary with the seed.
        assert!(trimmed > 0, "no trimmed serials in 4096 seeds");
        assert!(trimmed < 64, "trimming should be ~1/256 per leading byte");
    }

    #[test]
    fn serial_der_len_changes_with_builder_override() {
        // `serial_seed()` overrides feed the same derivation.
        let seed_with_zero_lead = (0..1u64 << 16)
            .find(|&s| CertificateBuilder::serial_der_len(s) < 18)
            .expect("some seed trims");
        let cert = CertificateBuilder::new(
            DistinguishedName::ca("US", "CA", "X"),
            DistinguishedName::cn("example.org"),
            SubjectPublicKeyInfo::new(KeyAlgorithm::EcdsaP256, 1),
            SignatureAlgorithm::EcdsaSha256,
        )
        .serial_seed(seed_with_zero_lead)
        .build();
        assert_eq!(
            der::integer_bytes(&cert.tbs.serial).len(),
            CertificateBuilder::serial_der_len(seed_with_zero_lead),
        );
    }
}
