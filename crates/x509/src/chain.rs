//! Certificate chains as delivered by TLS servers.
//!
//! A chain is the leaf plus the intermediates the server sends (and,
//! sometimes — superfluously — the trust anchor itself, as the paper observes
//! in Fig 7(b) row 9). The chain's *wire size* is what collides with the QUIC
//! anti-amplification limit.

use std::sync::Arc;

use crate::cert::{Certificate, FieldSizes};

/// A server certificate chain, leaf first.
///
/// The intermediates are reference-counted: in a realistic population many
/// leaves hang off the same handful of parent chains, so cloning a chain (the
/// scanner does this once per probe) must not deep-copy kilobytes of cached
/// DER. Use [`CertificateChain::new_shared`] to share one parent chain across
/// many leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertificateChain {
    /// End-entity certificate.
    pub leaf: Certificate,
    /// Intermediates in the order the server sends them (leaf's issuer
    /// first when correctly ordered). May include a root.
    pub intermediates: Arc<Vec<Certificate>>,
}

impl CertificateChain {
    /// Create a chain from an owned intermediate list.
    pub fn new(leaf: Certificate, intermediates: Vec<Certificate>) -> Self {
        CertificateChain {
            leaf,
            intermediates: Arc::new(intermediates),
        }
    }

    /// Create a chain that shares an already-issued parent chain.
    pub fn new_shared(leaf: Certificate, intermediates: Arc<Vec<Certificate>>) -> Self {
        CertificateChain {
            leaf,
            intermediates,
        }
    }

    /// Every certificate, leaf first.
    pub fn certs(&self) -> impl Iterator<Item = &Certificate> {
        std::iter::once(&self.leaf).chain(self.intermediates.iter())
    }

    /// Number of certificates in the chain.
    pub fn depth(&self) -> usize {
        1 + self.intermediates.len()
    }

    /// Total DER bytes of all certificates (the dominant part of the TLS
    /// `Certificate` message and of Figs 5–7).
    pub fn total_der_len(&self) -> usize {
        self.certs().map(|c| c.der_len()).sum()
    }

    /// DER bytes of the non-leaf (parent) part of the chain — the "parent
    /// chain" of Fig 7.
    pub fn parent_der_len(&self) -> usize {
        self.intermediates.iter().map(|c| c.der_len()).sum()
    }

    /// The concatenated DER of all certificates, leaf first (input to
    /// certificate compression experiments).
    pub fn concatenated_der(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.total_der_len());
        for cert in self.certs() {
            out.extend_from_slice(cert.der());
        }
        out
    }

    /// Whether the chain is correctly ordered: each certificate is issued by
    /// the next one (matched on distinguished names). Fig 7 excludes chains
    /// that are not correctly ordered.
    pub fn correctly_ordered(&self) -> bool {
        let mut certs: Vec<&Certificate> = self.certs().collect();
        let last = match certs.pop() {
            Some(c) => c,
            None => return true,
        };
        for pair in certs.windows(1).zip(self.intermediates.iter()) {
            let (child, parent) = (pair.0[0], pair.1);
            if child.tbs.issuer != parent.tbs.subject {
                return false;
            }
        }
        // The last certificate either chains to an out-of-band root or is
        // itself self-signed; both are "ordered".
        let _ = last;
        true
    }

    /// Whether the server superfluously includes a self-signed trust anchor
    /// (root) in the chain — wasted bytes, §4.2.
    pub fn includes_trust_anchor(&self) -> bool {
        self.intermediates.iter().any(|c| c.is_self_signed())
    }

    /// Aggregate field sizes over all certificates (Fig 2b is computed over
    /// every certificate in the corpus).
    pub fn aggregate_field_sizes(&self) -> FieldSizes {
        let mut total = FieldSizes::default();
        for c in self.certs() {
            let f = c.field_sizes();
            total.subject += f.subject;
            total.issuer += f.issuer;
            total.spki += f.spki;
            total.extensions += f.extensions;
            total.signature += f.signature;
            total.other += f.other;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::{KeyAlgorithm, SignatureAlgorithm, SubjectPublicKeyInfo};
    use crate::cert::CertificateBuilder;
    use crate::ext::{Extension, KeyUsageFlags};
    use crate::name::DistinguishedName;

    fn ca_cert(issuer: &DistinguishedName, subject: DistinguishedName, seed: u64) -> Certificate {
        CertificateBuilder::new(
            issuer.clone(),
            subject,
            SubjectPublicKeyInfo::new(KeyAlgorithm::Rsa2048, seed),
            SignatureAlgorithm::Sha256WithRsa2048,
        )
        .extension(Extension::BasicConstraints {
            ca: true,
            path_len: Some(0),
        })
        .extension(Extension::KeyUsage(KeyUsageFlags::ca()))
        .build()
    }

    fn build_chain(include_root: bool) -> CertificateChain {
        let root_dn = DistinguishedName::ca("US", "Test Trust Co", "Test Root");
        let inter_dn = DistinguishedName::ca("US", "Test Trust Co", "Test CA 1");
        let root = ca_cert(&root_dn, root_dn.clone(), 1);
        let inter = ca_cert(&root_dn, inter_dn.clone(), 2);
        let leaf = CertificateBuilder::new(
            inter_dn,
            DistinguishedName::cn("www.example.org"),
            SubjectPublicKeyInfo::new(KeyAlgorithm::EcdsaP256, 3),
            SignatureAlgorithm::Sha256WithRsa2048,
        )
        .extension(Extension::SubjectAltNames(vec!["www.example.org".into()]))
        .build();
        let mut intermediates = vec![inter];
        if include_root {
            intermediates.push(root);
        }
        CertificateChain::new(leaf, intermediates)
    }

    #[test]
    fn sizes_add_up() {
        let chain = build_chain(false);
        assert_eq!(chain.depth(), 2);
        assert_eq!(
            chain.total_der_len(),
            chain.leaf.der_len() + chain.parent_der_len()
        );
        assert_eq!(chain.concatenated_der().len(), chain.total_der_len());
    }

    #[test]
    fn ordering_check_accepts_valid_chain() {
        assert!(build_chain(false).correctly_ordered());
        assert!(build_chain(true).correctly_ordered());
    }

    #[test]
    fn ordering_check_rejects_shuffled_chain() {
        let mut chain = build_chain(true);
        Arc::make_mut(&mut chain.intermediates).reverse();
        assert!(!chain.correctly_ordered());
    }

    #[test]
    fn trust_anchor_detection() {
        assert!(!build_chain(false).includes_trust_anchor());
        assert!(build_chain(true).includes_trust_anchor());
    }

    #[test]
    fn aggregate_field_sizes_sum_to_chain_total() {
        let chain = build_chain(true);
        assert_eq!(chain.aggregate_field_sizes().total(), chain.total_der_len());
    }

    #[test]
    fn certs_iterates_leaf_first() {
        let chain = build_chain(false);
        let first = chain.certs().next().unwrap();
        assert_eq!(first.tbs.subject.common_name(), Some("www.example.org"));
    }
}
