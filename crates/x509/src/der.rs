//! DER (Distinguished Encoding Rules) primitives.
//!
//! Only the subset of ASN.1/DER needed by X.509 is implemented: single-byte
//! tags, definite lengths, and the universal types that appear in
//! certificates. Encoding functions return owned byte vectors; structures
//! are built bottom-up (children first, then wrapped), which matches how
//! certificate sizes are attributed to fields elsewhere in the workspace.

/// ASN.1 universal tag numbers (with constructed bit where conventional).
pub mod tag {
    /// BOOLEAN
    pub const BOOLEAN: u8 = 0x01;
    /// INTEGER
    pub const INTEGER: u8 = 0x02;
    /// BIT STRING
    pub const BIT_STRING: u8 = 0x03;
    /// OCTET STRING
    pub const OCTET_STRING: u8 = 0x04;
    /// NULL
    pub const NULL: u8 = 0x05;
    /// OBJECT IDENTIFIER
    pub const OID: u8 = 0x06;
    /// UTF8String
    pub const UTF8_STRING: u8 = 0x0C;
    /// PrintableString
    pub const PRINTABLE_STRING: u8 = 0x13;
    /// IA5String
    pub const IA5_STRING: u8 = 0x16;
    /// UTCTime
    pub const UTC_TIME: u8 = 0x17;
    /// GeneralizedTime
    pub const GENERALIZED_TIME: u8 = 0x18;
    /// SEQUENCE (constructed)
    pub const SEQUENCE: u8 = 0x30;
    /// SET (constructed)
    pub const SET: u8 = 0x31;
}

/// Encode a definite-form DER length.
pub fn encode_length(len: usize) -> Vec<u8> {
    if len < 0x80 {
        vec![len as u8]
    } else if len <= 0xFF {
        vec![0x81, len as u8]
    } else if len <= 0xFFFF {
        vec![0x82, (len >> 8) as u8, len as u8]
    } else if len <= 0xFF_FFFF {
        vec![0x83, (len >> 16) as u8, (len >> 8) as u8, len as u8]
    } else {
        vec![
            0x84,
            (len >> 24) as u8,
            (len >> 16) as u8,
            (len >> 8) as u8,
            len as u8,
        ]
    }
}

/// Wrap `content` in a tag-length-value triplet.
pub fn tlv(tag: u8, content: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(content.len() + 6);
    out.push(tag);
    out.extend_from_slice(&encode_length(content.len()));
    out.extend_from_slice(content);
    out
}

/// SEQUENCE of pre-encoded children.
pub fn sequence(children: &[Vec<u8>]) -> Vec<u8> {
    let content: Vec<u8> = children.iter().flatten().copied().collect();
    tlv(tag::SEQUENCE, &content)
}

/// SET of pre-encoded children.
///
/// Note: strict DER requires SET OF elements to be sorted; X.509 RDNs are
/// nearly always singleton sets, which are trivially sorted.
pub fn set(children: &[Vec<u8>]) -> Vec<u8> {
    let content: Vec<u8> = children.iter().flatten().copied().collect();
    tlv(tag::SET, &content)
}

/// INTEGER from a big-endian magnitude. A leading zero byte is inserted when
/// the high bit is set (DER integers are signed); leading redundant zeros are
/// stripped.
pub fn integer_bytes(magnitude: &[u8]) -> Vec<u8> {
    let mut m: &[u8] = magnitude;
    while m.len() > 1 && m[0] == 0 && m[1] & 0x80 == 0 {
        m = &m[1..];
    }
    if m.is_empty() {
        return tlv(tag::INTEGER, &[0]);
    }
    if m[0] & 0x80 != 0 {
        let mut content = Vec::with_capacity(m.len() + 1);
        content.push(0);
        content.extend_from_slice(m);
        tlv(tag::INTEGER, &content)
    } else {
        tlv(tag::INTEGER, m)
    }
}

/// INTEGER from a u64.
pub fn integer_u64(v: u64) -> Vec<u8> {
    let bytes = v.to_be_bytes();
    let first = bytes.iter().position(|&b| b != 0).unwrap_or(7);
    integer_bytes(&bytes[first..])
}

/// BIT STRING with the given number of unused trailing bits.
pub fn bit_string(bits: &[u8], unused: u8) -> Vec<u8> {
    let mut content = Vec::with_capacity(bits.len() + 1);
    content.push(unused);
    content.extend_from_slice(bits);
    tlv(tag::BIT_STRING, &content)
}

/// OCTET STRING.
pub fn octet_string(bytes: &[u8]) -> Vec<u8> {
    tlv(tag::OCTET_STRING, bytes)
}

/// BOOLEAN (DER: 0xFF for true).
pub fn boolean(v: bool) -> Vec<u8> {
    tlv(tag::BOOLEAN, &[if v { 0xFF } else { 0x00 }])
}

/// NULL.
pub fn null() -> Vec<u8> {
    tlv(tag::NULL, &[])
}

/// PrintableString.
pub fn printable_string(s: &str) -> Vec<u8> {
    tlv(tag::PRINTABLE_STRING, s.as_bytes())
}

/// UTF8String.
pub fn utf8_string(s: &str) -> Vec<u8> {
    tlv(tag::UTF8_STRING, s.as_bytes())
}

/// IA5String (ASCII; used for DNS names and URIs).
pub fn ia5_string(s: &str) -> Vec<u8> {
    tlv(tag::IA5_STRING, s.as_bytes())
}

/// UTCTime from a pre-formatted `YYMMDDHHMMSSZ` string.
pub fn utc_time(s: &str) -> Vec<u8> {
    debug_assert_eq!(s.len(), 13, "UTCTime must be YYMMDDHHMMSSZ");
    tlv(tag::UTC_TIME, s.as_bytes())
}

/// Context-specific tag (`[n]`), constructed or primitive.
pub fn context(n: u8, constructed: bool, content: &[u8]) -> Vec<u8> {
    let tag = 0x80 | n | if constructed { 0x20 } else { 0x00 };
    tlv(tag, content)
}

/// Encode an OBJECT IDENTIFIER from its integer arcs.
pub fn oid_from_arcs(arcs: &[u64]) -> Vec<u8> {
    assert!(arcs.len() >= 2, "OID needs at least two arcs");
    let mut content = Vec::new();
    content.push((arcs[0] * 40 + arcs[1]) as u8);
    for &arc in &arcs[2..] {
        content.extend_from_slice(&encode_base128(arc));
    }
    tlv(tag::OID, &content)
}

fn encode_base128(mut v: u64) -> Vec<u8> {
    let mut out = vec![(v & 0x7F) as u8];
    v >>= 7;
    while v > 0 {
        out.push(0x80 | (v & 0x7F) as u8);
        v >>= 7;
    }
    out.reverse();
    out
}

/// A parsed DER value (tag + raw content), with lazy child access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DerValue {
    /// The tag byte.
    pub tag: u8,
    /// The content octets (without tag/length).
    pub content: Vec<u8>,
}

impl DerValue {
    /// Whether the constructed bit is set.
    pub fn is_constructed(&self) -> bool {
        self.tag & 0x20 != 0
    }

    /// Parse the content as a list of child TLVs.
    pub fn children(&self) -> Result<Vec<DerValue>, DerError> {
        let mut reader = DerReader::new(&self.content);
        let mut out = Vec::new();
        while !reader.is_empty() {
            out.push(reader.read_value()?);
        }
        Ok(out)
    }
}

/// Errors produced by [`DerReader`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DerError {
    /// Input ended in the middle of a TLV.
    Truncated,
    /// An indefinite or reserved length encoding was encountered.
    BadLength,
}

impl std::fmt::Display for DerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DerError::Truncated => write!(f, "truncated DER input"),
            DerError::BadLength => write!(f, "unsupported DER length encoding"),
        }
    }
}

impl std::error::Error for DerError {}

/// A simple sequential DER reader over a byte slice.
#[derive(Debug)]
pub struct DerReader<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> DerReader<'a> {
    /// Create a reader over `input`.
    pub fn new(input: &'a [u8]) -> Self {
        DerReader { input, pos: 0 }
    }

    /// Whether all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.input.len()
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.input.len() - self.pos
    }

    fn read_byte(&mut self) -> Result<u8, DerError> {
        let b = *self.input.get(self.pos).ok_or(DerError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn read_length(&mut self) -> Result<usize, DerError> {
        let first = self.read_byte()?;
        if first < 0x80 {
            return Ok(first as usize);
        }
        let n = (first & 0x7F) as usize;
        if n == 0 || n > 4 {
            return Err(DerError::BadLength);
        }
        let mut len = 0usize;
        for _ in 0..n {
            len = (len << 8) | self.read_byte()? as usize;
        }
        // DER demands the minimal length form: a long form may not encode a
        // value the short form (or a shorter long form) could carry.
        let minimal = if n == 1 {
            0x80
        } else {
            1usize << (8 * (n - 1))
        };
        if len < minimal {
            return Err(DerError::BadLength);
        }
        Ok(len)
    }

    /// Read the next TLV as a [`DerValue`].
    pub fn read_value(&mut self) -> Result<DerValue, DerError> {
        let tag = self.read_byte()?;
        let len = self.read_length()?;
        if self.remaining() < len {
            return Err(DerError::Truncated);
        }
        let content = self.input[self.pos..self.pos + len].to_vec();
        self.pos += len;
        Ok(DerValue { tag, content })
    }
}

/// Parse a byte slice as exactly one DER value.
pub fn parse_one(input: &[u8]) -> Result<DerValue, DerError> {
    let mut r = DerReader::new(input);
    let v = r.read_value()?;
    if !r.is_empty() {
        return Err(DerError::Truncated);
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn length_encodings() {
        assert_eq!(encode_length(0), vec![0x00]);
        assert_eq!(encode_length(127), vec![0x7F]);
        assert_eq!(encode_length(128), vec![0x81, 0x80]);
        assert_eq!(encode_length(255), vec![0x81, 0xFF]);
        assert_eq!(encode_length(256), vec![0x82, 0x01, 0x00]);
        assert_eq!(encode_length(65535), vec![0x82, 0xFF, 0xFF]);
        assert_eq!(encode_length(65536), vec![0x83, 0x01, 0x00, 0x00]);
    }

    #[test]
    fn integer_adds_sign_padding() {
        // 0x80 has the high bit set -> leading zero required.
        assert_eq!(integer_bytes(&[0x80]), vec![0x02, 0x02, 0x00, 0x80]);
        assert_eq!(integer_bytes(&[0x7F]), vec![0x02, 0x01, 0x7F]);
        // Redundant leading zeros stripped.
        assert_eq!(integer_bytes(&[0x00, 0x00, 0x01]), vec![0x02, 0x01, 0x01]);
        // But a zero needed for sign is kept.
        assert_eq!(integer_bytes(&[0x00, 0x80]), vec![0x02, 0x02, 0x00, 0x80]);
        assert_eq!(integer_bytes(&[]), vec![0x02, 0x01, 0x00]);
    }

    #[test]
    fn integer_u64_matches_known_values() {
        assert_eq!(integer_u64(0), vec![0x02, 0x01, 0x00]);
        assert_eq!(integer_u64(65537), vec![0x02, 0x03, 0x01, 0x00, 0x01]);
    }

    #[test]
    fn oid_encoding_matches_rfc_examples() {
        // rsaEncryption = 1.2.840.113549.1.1.1
        let oid = oid_from_arcs(&[1, 2, 840, 113549, 1, 1, 1]);
        assert_eq!(
            oid,
            vec![0x06, 0x09, 0x2A, 0x86, 0x48, 0x86, 0xF7, 0x0D, 0x01, 0x01, 0x01]
        );
        // id-ce-subjectAltName = 2.5.29.17
        assert_eq!(
            oid_from_arcs(&[2, 5, 29, 17]),
            vec![0x06, 0x03, 0x55, 0x1D, 0x11]
        );
    }

    #[test]
    fn sequence_nests() {
        let inner = sequence(&[integer_u64(1), integer_u64(2)]);
        let outer = sequence(std::slice::from_ref(&inner));
        let parsed = parse_one(&outer).unwrap();
        assert_eq!(parsed.tag, tag::SEQUENCE);
        let children = parsed.children().unwrap();
        assert_eq!(children.len(), 1);
        let grandchildren = children[0].children().unwrap();
        assert_eq!(grandchildren.len(), 2);
        assert_eq!(grandchildren[0].content, vec![1]);
        assert_eq!(grandchildren[1].content, vec![2]);
    }

    #[test]
    fn bit_string_prefixes_unused_count() {
        let bs = bit_string(&[0xAA, 0xBB], 0);
        assert_eq!(bs, vec![0x03, 0x03, 0x00, 0xAA, 0xBB]);
    }

    #[test]
    fn context_tags() {
        // [0] constructed wrapping an INTEGER (X.509 version field).
        let v = context(0, true, &integer_u64(2));
        assert_eq!(v[0], 0xA0);
        let parsed = parse_one(&v).unwrap();
        assert!(parsed.is_constructed());
        // [2] primitive (GeneralName dNSName).
        let g = context(2, false, b"example.org");
        assert_eq!(g[0], 0x82);
    }

    #[test]
    fn reader_rejects_truncation() {
        let seq = sequence(&[integer_u64(5)]);
        let err = parse_one(&seq[..seq.len() - 1]).unwrap_err();
        assert_eq!(err, DerError::Truncated);
    }

    #[test]
    fn reader_rejects_overlong_length_forms() {
        // 5 encoded in the one-byte long form: short form required.
        assert_eq!(
            parse_one(&[0x04, 0x81, 0x05, 1, 2, 3, 4, 5]).unwrap_err(),
            DerError::BadLength
        );
        // 5 encoded in the two-byte long form with a leading zero octet.
        assert_eq!(
            parse_one(&[0x04, 0x82, 0x00, 0x05, 1, 2, 3, 4, 5]).unwrap_err(),
            DerError::BadLength
        );
        // The minimal encodings still parse.
        assert!(parse_one(&octet_string(&[0u8; 5])).is_ok());
        assert!(parse_one(&octet_string(&[0u8; 200])).is_ok());
        assert!(parse_one(&octet_string(&[0u8; 300])).is_ok());
    }

    #[test]
    fn reader_rejects_trailing_garbage() {
        let mut seq = sequence(&[integer_u64(5)]);
        seq.push(0x00);
        assert_eq!(parse_one(&seq).unwrap_err(), DerError::Truncated);
    }

    #[test]
    fn long_content_roundtrips() {
        let payload = vec![0x42u8; 70_000];
        let enc = octet_string(&payload);
        let parsed = parse_one(&enc).unwrap();
        assert_eq!(parsed.tag, tag::OCTET_STRING);
        assert_eq!(parsed.content, payload);
    }

    #[test]
    fn boolean_and_null() {
        assert_eq!(boolean(true), vec![0x01, 0x01, 0xFF]);
        assert_eq!(boolean(false), vec![0x01, 0x01, 0x00]);
        assert_eq!(null(), vec![0x05, 0x00]);
    }

    #[test]
    fn strings_use_expected_tags() {
        assert_eq!(printable_string("US")[0], tag::PRINTABLE_STRING);
        assert_eq!(utf8_string("Let's Encrypt")[0], tag::UTF8_STRING);
        assert_eq!(ia5_string("example.org")[0], tag::IA5_STRING);
        assert_eq!(utc_time("221229194411Z")[0], tag::UTC_TIME);
    }
}
