//! X.509 v3 certificate extensions.
//!
//! The paper observes that extensions are the single largest field group in
//! web certificates (Fig 2b) — driven mostly by Subject Alternative Names
//! ("cruise-liner" certificates, Appendix E), embedded SCTs, and AIA/CRL
//! URLs. Each variant here encodes to its genuine DER representation, so SAN
//! byte-share analysis (Fig 14) operates on real encodings.

use crate::der;
use crate::fill_deterministic;
use crate::oid::{self, Oid};

/// Key usage bits (RFC 5280 §4.2.1.3), most-significant bit first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KeyUsageFlags {
    /// digitalSignature (bit 0)
    pub digital_signature: bool,
    /// keyEncipherment (bit 2)
    pub key_encipherment: bool,
    /// keyCertSign (bit 5)
    pub key_cert_sign: bool,
    /// cRLSign (bit 6)
    pub crl_sign: bool,
}

impl KeyUsageFlags {
    /// Typical leaf usage (digitalSignature + keyEncipherment).
    pub fn leaf() -> Self {
        KeyUsageFlags {
            digital_signature: true,
            key_encipherment: true,
            ..Default::default()
        }
    }

    /// Typical CA usage (certSign + crlSign).
    pub fn ca() -> Self {
        KeyUsageFlags {
            key_cert_sign: true,
            crl_sign: true,
            digital_signature: true,
            ..Default::default()
        }
    }

    fn to_bits(self) -> (u8, u8) {
        let mut bits = 0u8;
        if self.digital_signature {
            bits |= 0x80;
        }
        if self.key_encipherment {
            bits |= 0x20;
        }
        if self.key_cert_sign {
            bits |= 0x04;
        }
        if self.crl_sign {
            bits |= 0x02;
        }
        let unused = bits.trailing_zeros().min(7) as u8;
        (bits, unused)
    }
}

/// A single certificate extension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Extension {
    /// basicConstraints: CA flag and optional path length (always critical).
    BasicConstraints {
        /// Whether the subject is a CA.
        ca: bool,
        /// Optional path length constraint.
        path_len: Option<u8>,
    },
    /// keyUsage (critical).
    KeyUsage(KeyUsageFlags),
    /// extKeyUsage: list of purpose OIDs.
    ExtKeyUsage(Vec<Oid>),
    /// subjectKeyIdentifier: 20-byte key hash derived from `seed`.
    SubjectKeyId {
        /// Seed the placeholder identifier is derived from.
        seed: u64,
    },
    /// authorityKeyIdentifier: keyid form, derived from `seed`.
    AuthorityKeyId {
        /// Seed of the issuer key identifier.
        seed: u64,
    },
    /// subjectAltName: list of dNSName entries.
    SubjectAltNames(Vec<String>),
    /// cRLDistributionPoints: list of URIs.
    CrlDistributionPoints(Vec<String>),
    /// authorityInfoAccess: optional OCSP URI and CA-issuers URI.
    AuthorityInfoAccess {
        /// OCSP responder URI.
        ocsp: Option<String>,
        /// CA issuers URI.
        ca_issuers: Option<String>,
    },
    /// certificatePolicies: policy OIDs (no qualifiers).
    CertificatePolicies(Vec<Oid>),
    /// Embedded signed certificate timestamps: `count` SCTs of realistic
    /// size (~119 bytes of TLS-encoded SCT structure each).
    SctList {
        /// Number of embedded SCTs (browsers require ≥2).
        count: u8,
        /// Seed for the placeholder SCT bytes.
        seed: u64,
    },
}

/// Encoded size of one serialized SCT entry (2-byte length prefix, version,
/// 32-byte log id, timestamp, extensions, ECDSA signature), matching what
/// CT logs emit in practice.
const SCT_ENTRY_LEN: usize = 121;

impl Extension {
    /// The extension OID.
    pub fn oid(&self) -> &'static Oid {
        match self {
            Extension::BasicConstraints { .. } => &oid::EXT_BASIC_CONSTRAINTS,
            Extension::KeyUsage(_) => &oid::EXT_KEY_USAGE,
            Extension::ExtKeyUsage(_) => &oid::EXT_EXT_KEY_USAGE,
            Extension::SubjectKeyId { .. } => &oid::EXT_SUBJECT_KEY_ID,
            Extension::AuthorityKeyId { .. } => &oid::EXT_AUTHORITY_KEY_ID,
            Extension::SubjectAltNames(_) => &oid::EXT_SUBJECT_ALT_NAME,
            Extension::CrlDistributionPoints(_) => &oid::EXT_CRL_DISTRIBUTION,
            Extension::AuthorityInfoAccess { .. } => &oid::EXT_AUTHORITY_INFO_ACCESS,
            Extension::CertificatePolicies(_) => &oid::EXT_CERT_POLICIES,
            Extension::SctList { .. } => &oid::EXT_SCT_LIST,
        }
    }

    /// Whether the extension is marked critical.
    pub fn critical(&self) -> bool {
        matches!(
            self,
            Extension::BasicConstraints { .. } | Extension::KeyUsage(_)
        )
    }

    /// The inner extnValue content (before OCTET STRING wrapping).
    fn encode_value(&self) -> Vec<u8> {
        match self {
            Extension::BasicConstraints { ca, path_len } => {
                let mut children = Vec::new();
                if *ca {
                    children.push(der::boolean(true));
                }
                if let Some(n) = path_len {
                    children.push(der::integer_u64(*n as u64));
                }
                der::sequence(&children)
            }
            Extension::KeyUsage(flags) => {
                let (bits, unused) = flags.to_bits();
                der::bit_string(&[bits], unused)
            }
            Extension::ExtKeyUsage(purposes) => {
                let children: Vec<Vec<u8>> = purposes.iter().map(|o| o.encode()).collect();
                der::sequence(&children)
            }
            Extension::SubjectKeyId { seed } => {
                let mut id = [0u8; 20];
                fill_deterministic(*seed, &mut id);
                der::octet_string(&id)
            }
            Extension::AuthorityKeyId { seed } => {
                let mut id = [0u8; 20];
                fill_deterministic(*seed, &mut id);
                // keyIdentifier is [0] IMPLICIT inside a SEQUENCE.
                der::sequence(&[der::context(0, false, &id)])
            }
            Extension::SubjectAltNames(names) => {
                let children: Vec<Vec<u8>> = names
                    .iter()
                    .map(|n| der::context(2, false, n.as_bytes())) // dNSName
                    .collect();
                der::sequence(&children)
            }
            Extension::CrlDistributionPoints(uris) => {
                let points: Vec<Vec<u8>> = uris
                    .iter()
                    .map(|uri| {
                        // DistributionPoint { distributionPoint [0] { fullName [0] { uri [6] } } }
                        let general_name = der::context(6, false, uri.as_bytes());
                        let full_name = der::context(0, true, &general_name);
                        let dp_name = der::context(0, true, &full_name);
                        der::sequence(&[dp_name])
                    })
                    .collect();
                der::sequence(&points)
            }
            Extension::AuthorityInfoAccess { ocsp, ca_issuers } => {
                let mut descs = Vec::new();
                if let Some(uri) = ocsp {
                    descs.push(der::sequence(&[
                        oid::AD_OCSP.encode(),
                        der::context(6, false, uri.as_bytes()),
                    ]));
                }
                if let Some(uri) = ca_issuers {
                    descs.push(der::sequence(&[
                        oid::AD_CA_ISSUERS.encode(),
                        der::context(6, false, uri.as_bytes()),
                    ]));
                }
                der::sequence(&descs)
            }
            Extension::CertificatePolicies(policies) => {
                let infos: Vec<Vec<u8>> = policies
                    .iter()
                    .map(|p| der::sequence(&[p.encode()]))
                    .collect();
                der::sequence(&infos)
            }
            Extension::SctList { count, seed } => {
                // TLS-style: outer 2-byte list length, then per-SCT 2-byte
                // length + body — wrapped in an OCTET STRING by the caller.
                let mut list = Vec::new();
                for i in 0..*count {
                    let mut body = vec![0u8; SCT_ENTRY_LEN - 2];
                    fill_deterministic(seed.wrapping_add(i as u64), &mut body);
                    body[0] = 0; // SCT version 1
                    list.extend_from_slice(&((body.len()) as u16).to_be_bytes());
                    list.extend_from_slice(&body);
                }
                let mut tls = Vec::with_capacity(list.len() + 2);
                tls.extend_from_slice(&(list.len() as u16).to_be_bytes());
                tls.extend_from_slice(&list);
                der::octet_string(&tls)
            }
        }
    }

    /// Encode the full Extension SEQUENCE (OID, optional critical flag,
    /// OCTET STRING value).
    pub fn encode(&self) -> Vec<u8> {
        let mut children = vec![self.oid().encode()];
        if self.critical() {
            children.push(der::boolean(true));
        }
        children.push(der::octet_string(&self.encode_value()));
        der::sequence(&children)
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }

    /// For SAN extensions: the encoded size (Fig 14 measures the byte share
    /// of SANs within leaf certificates). Zero for other extensions.
    pub fn san_bytes(&self) -> usize {
        match self {
            Extension::SubjectAltNames(_) => self.encoded_len(),
            _ => 0,
        }
    }
}

/// Encode a full `Extensions` list, including the `[3] EXPLICIT` wrapper
/// used inside TBSCertificate.
pub fn encode_extensions(exts: &[Extension]) -> Vec<u8> {
    let encoded: Vec<Vec<u8>> = exts.iter().map(|e| e.encode()).collect();
    let seq = der::sequence(&encoded);
    der::context(3, true, &seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::der::parse_one;

    #[test]
    fn basic_constraints_ca_shape() {
        let ext = Extension::BasicConstraints {
            ca: true,
            path_len: Some(0),
        };
        let enc = ext.encode();
        let parsed = parse_one(&enc).unwrap();
        let children = parsed.children().unwrap();
        // OID + critical + value
        assert_eq!(children.len(), 3);
        assert_eq!(children[1].content, vec![0xFF]);
    }

    #[test]
    fn empty_basic_constraints_for_leaves() {
        let ext = Extension::BasicConstraints {
            ca: false,
            path_len: None,
        };
        // Empty SEQUENCE inside the OCTET STRING.
        let enc = ext.encode();
        let children = parse_one(&enc).unwrap().children().unwrap();
        let value = &children[2];
        assert_eq!(value.content, vec![0x30, 0x00]);
    }

    #[test]
    fn key_usage_bit_packing() {
        let (bits, unused) = KeyUsageFlags::leaf().to_bits();
        assert_eq!(bits, 0xA0);
        assert_eq!(unused, 5);
        let (bits, unused) = KeyUsageFlags::ca().to_bits();
        assert_eq!(bits, 0x86);
        assert_eq!(unused, 1);
    }

    #[test]
    fn san_size_grows_linearly_with_names() {
        let few = Extension::SubjectAltNames(vec!["example.org".into()]);
        let many =
            Extension::SubjectAltNames((0..50).map(|i| format!("host-{i}.example.org")).collect());
        assert!(many.encoded_len() > few.encoded_len() + 49 * 15);
        assert_eq!(few.san_bytes(), few.encoded_len());
        assert_eq!(
            Extension::SubjectKeyId { seed: 1 }.san_bytes(),
            0,
            "non-SAN extensions report zero SAN bytes"
        );
    }

    #[test]
    fn sct_list_size_scales_with_count() {
        let two = Extension::SctList { count: 2, seed: 1 };
        let three = Extension::SctList { count: 3, seed: 1 };
        // Exactly one SCT entry more, plus up to a few bytes of DER length
        // framing growth when a length crosses the 255-byte boundary.
        let delta = three.encoded_len() - two.encoded_len();
        assert!(
            (SCT_ENTRY_LEN..SCT_ENTRY_LEN + 5).contains(&delta),
            "delta {delta}"
        );
        // Two SCTs: real-world extensions run ~250–280 bytes total.
        assert!(
            (240..=280).contains(&two.encoded_len()),
            "was {}",
            two.encoded_len()
        );
    }

    #[test]
    fn aia_includes_requested_uris() {
        let ext = Extension::AuthorityInfoAccess {
            ocsp: Some("http://r3.o.lencr.org".into()),
            ca_issuers: Some("http://r3.i.lencr.org/".into()),
        };
        let enc = ext.encode();
        let text = String::from_utf8_lossy(&enc).into_owned();
        assert!(text.contains("r3.o.lencr.org"));
        assert!(text.contains("r3.i.lencr.org"));
    }

    #[test]
    fn all_extensions_are_wellformed_der() {
        let exts = vec![
            Extension::BasicConstraints {
                ca: true,
                path_len: None,
            },
            Extension::KeyUsage(KeyUsageFlags::ca()),
            Extension::ExtKeyUsage(vec![oid::KP_SERVER_AUTH, oid::KP_CLIENT_AUTH]),
            Extension::SubjectKeyId { seed: 2 },
            Extension::AuthorityKeyId { seed: 3 },
            Extension::SubjectAltNames(vec!["a.example".into(), "*.b.example".into()]),
            Extension::CrlDistributionPoints(vec!["http://crl.example/x.crl".into()]),
            Extension::AuthorityInfoAccess {
                ocsp: Some("http://ocsp.example".into()),
                ca_issuers: None,
            },
            Extension::CertificatePolicies(vec![oid::CP_DOMAIN_VALIDATED]),
            Extension::SctList { count: 2, seed: 4 },
        ];
        for ext in &exts {
            let parsed = parse_one(&ext.encode()).unwrap();
            assert_eq!(parsed.tag, 0x30, "{:?}", ext.oid());
        }
        let wrapped = encode_extensions(&exts);
        let outer = parse_one(&wrapped).unwrap();
        assert_eq!(outer.tag, 0xA3, "extensions use [3] EXPLICIT");
        let seq = outer.children().unwrap();
        assert_eq!(seq.len(), 1);
        assert_eq!(seq[0].children().unwrap().len(), exts.len());
    }

    #[test]
    fn criticality_flags() {
        assert!(Extension::KeyUsage(KeyUsageFlags::leaf()).critical());
        assert!(!Extension::SubjectAltNames(vec![]).critical());
        assert!(!Extension::SctList { count: 2, seed: 0 }.critical());
    }
}
