//! # quicert-x509 — from-scratch DER and X.509 v3 certificates
//!
//! The paper's figures all hinge on certificate *sizes*: the size of each
//! X.509 field (Fig 2b, Fig 8), the size of full chains (Fig 5–7), and how
//! those sizes interact with the QUIC anti-amplification limit. To reproduce
//! them faithfully, this crate implements a real DER encoder and an X.509 v3
//! certificate model: every certificate in the workspace is genuine DER whose
//! byte counts come from actual encoding, not from lookup tables.
//!
//! Cryptographic *signatures and keys are structurally faithful placeholders*:
//! they have exactly the DER shape and length of real RSA-2048/4096 and
//! ECDSA P-256/P-384 material, but the bits are deterministic pseudo-random
//! values. The paper never verifies signatures — only their sizes matter —
//! and this keeps the workspace free of external crypto dependencies
//! (substitution documented in DESIGN.md).
//!
//! A minimal DER *reader* is included so tests can property-check that the
//! encoder emits well-formed, round-trippable TLV structures.

pub mod alg;
pub mod cert;
pub mod chain;
pub mod der;
pub mod ext;
pub mod name;
pub mod oid;
pub mod time;

pub use alg::{KeyAlgorithm, SignatureAlgorithm, SubjectPublicKeyInfo};
pub use cert::{Certificate, CertificateBuilder, FieldSizes, TbsCertificate, Validity};
pub use chain::CertificateChain;
pub use der::{DerReader, DerValue};
pub use ext::Extension;
pub use name::{AttrKind, DistinguishedName};
pub use oid::Oid;
pub use time::Time;

/// Deterministic 64-bit mixer used to derive placeholder key/signature bytes
/// from `(seed, counter)` pairs without pulling in an RNG dependency.
/// (SplitMix64 finalizer.)
pub(crate) fn mix64(seed: u64, counter: u64) -> u64 {
    let mut z = seed
        .wrapping_add(counter.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Fill a buffer with deterministic pseudo-random bytes derived from `seed`.
pub(crate) fn fill_deterministic(seed: u64, buf: &mut [u8]) {
    for (i, chunk) in buf.chunks_mut(8).enumerate() {
        let v = mix64(seed, i as u64).to_le_bytes();
        let n = chunk.len();
        chunk.copy_from_slice(&v[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(1, 2), mix64(1, 2));
        assert_ne!(mix64(1, 2), mix64(1, 3));
        assert_ne!(mix64(1, 2), mix64(2, 2));
    }

    #[test]
    fn fill_deterministic_covers_tail() {
        let mut a = [0u8; 13];
        fill_deterministic(7, &mut a);
        let mut b = [0u8; 13];
        fill_deterministic(7, &mut b);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x != 0));
    }
}
