//! X.501 distinguished names.
//!
//! A `Name` is a SEQUENCE of relative distinguished names (RDNs), each a SET
//! of attribute type/value pairs. Real-world certificate names are almost
//! always chains of singleton RDNs, which is what this model emits.

use crate::der;
use crate::oid::{self, Oid};

/// Attribute types that appear in subject / issuer names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// commonName (CN) — encoded as UTF8String (modern practice).
    CommonName,
    /// countryName (C) — PrintableString, exactly two letters.
    Country,
    /// organizationName (O) — UTF8String.
    Organization,
    /// organizationalUnitName (OU) — UTF8String.
    OrgUnit,
    /// localityName (L) — UTF8String.
    Locality,
    /// stateOrProvinceName (ST) — UTF8String.
    State,
}

impl AttrKind {
    /// The attribute type OID.
    pub fn oid(self) -> &'static Oid {
        match self {
            AttrKind::CommonName => &oid::AT_COMMON_NAME,
            AttrKind::Country => &oid::AT_COUNTRY,
            AttrKind::Organization => &oid::AT_ORGANIZATION,
            AttrKind::OrgUnit => &oid::AT_ORG_UNIT,
            AttrKind::Locality => &oid::AT_LOCALITY,
            AttrKind::State => &oid::AT_STATE,
        }
    }

    /// The short label used when rendering (`CN`, `O`, ...).
    pub fn label(self) -> &'static str {
        match self {
            AttrKind::CommonName => "CN",
            AttrKind::Country => "C",
            AttrKind::Organization => "O",
            AttrKind::OrgUnit => "OU",
            AttrKind::Locality => "L",
            AttrKind::State => "ST",
        }
    }

    fn encode_value(self, value: &str) -> Vec<u8> {
        match self {
            // Country is conventionally PrintableString.
            AttrKind::Country => der::printable_string(value),
            _ => der::utf8_string(value),
        }
    }
}

/// A distinguished name: an ordered list of `(type, value)` attributes.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct DistinguishedName {
    /// The attributes in RDN order.
    pub attrs: Vec<(AttrKind, String)>,
}

impl DistinguishedName {
    /// Empty name.
    pub fn new() -> Self {
        DistinguishedName { attrs: Vec::new() }
    }

    /// Builder-style attribute append.
    pub fn with(mut self, kind: AttrKind, value: impl Into<String>) -> Self {
        self.attrs.push((kind, value.into()));
        self
    }

    /// Shorthand for the ubiquitous `C=.., O=.., CN=..` CA name shape.
    pub fn ca(country: &str, org: &str, cn: &str) -> Self {
        DistinguishedName::new()
            .with(AttrKind::Country, country)
            .with(AttrKind::Organization, org)
            .with(AttrKind::CommonName, cn)
    }

    /// Shorthand for a bare `CN=..` leaf subject (modern DV practice).
    pub fn cn(cn: &str) -> Self {
        DistinguishedName::new().with(AttrKind::CommonName, cn)
    }

    /// The commonName value, if present.
    pub fn common_name(&self) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| *k == AttrKind::CommonName)
            .map(|(_, v)| v.as_str())
    }

    /// DER-encode the name (SEQUENCE of singleton SETs).
    pub fn encode(&self) -> Vec<u8> {
        let rdns: Vec<Vec<u8>> = self
            .attrs
            .iter()
            .map(|(kind, value)| {
                let atv = der::sequence(&[kind.oid().encode(), kind.encode_value(value)]);
                der::set(&[atv])
            })
            .collect();
        der::sequence(&rdns)
    }

    /// Encoded length in bytes.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }

    /// Render in the familiar `C=BE, O=GlobalSign nv-sa, CN=...` form.
    pub fn render(&self) -> String {
        self.attrs
            .iter()
            .map(|(k, v)| format!("{}={}", k.label(), v))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

impl std::fmt::Display for DistinguishedName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::der::parse_one;

    #[test]
    fn render_matches_paper_example() {
        let dn = DistinguishedName::ca(
            "BE",
            "GlobalSign nv-sa",
            "GlobalSign Atlas R3 DV TLS CA H2 2021",
        );
        assert_eq!(
            dn.render(),
            "C=BE, O=GlobalSign nv-sa, CN=GlobalSign Atlas R3 DV TLS CA H2 2021"
        );
    }

    #[test]
    fn encoding_is_wellformed_nested_der() {
        let dn = DistinguishedName::ca("US", "Let's Encrypt", "R3");
        let enc = dn.encode();
        let name = parse_one(&enc).unwrap();
        let rdns = name.children().unwrap();
        assert_eq!(rdns.len(), 3);
        for rdn in &rdns {
            assert_eq!(rdn.tag, 0x31, "RDN must be a SET");
            let atvs = rdn.children().unwrap();
            assert_eq!(atvs.len(), 1);
            let parts = atvs[0].children().unwrap();
            assert_eq!(parts[0].tag, 0x06, "first ATV element is the type OID");
        }
    }

    #[test]
    fn country_uses_printable_string() {
        let dn = DistinguishedName::new().with(AttrKind::Country, "DE");
        let enc = dn.encode();
        let atv = parse_one(&enc).unwrap().children().unwrap()[0]
            .children()
            .unwrap()[0]
            .children()
            .unwrap();
        assert_eq!(atv[1].tag, 0x13);
        assert_eq!(atv[1].content, b"DE");
    }

    #[test]
    fn longer_names_encode_longer() {
        let short = DistinguishedName::cn("*.a.io");
        let long = DistinguishedName::ca(
            "US",
            "An Extremely Long Organization Name LLC",
            "*.subdomain.of.some.example.org",
        );
        assert!(long.encoded_len() > short.encoded_len() + 40);
    }

    #[test]
    fn common_name_lookup() {
        let dn = DistinguishedName::ca("US", "Google Trust Services LLC", "GTS CA 1C3");
        assert_eq!(dn.common_name(), Some("GTS CA 1C3"));
        assert_eq!(DistinguishedName::new().common_name(), None);
    }
}
