//! Object identifiers used by the X.509 profile.

use crate::der;

/// An object identifier, stored as its integer arcs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Oid(pub &'static [u64]);

impl Oid {
    /// DER-encode the OID (including tag and length).
    pub fn encode(&self) -> Vec<u8> {
        der::oid_from_arcs(self.0)
    }

    /// Dotted-decimal representation, e.g. `"2.5.29.17"`.
    pub fn dotted(&self) -> String {
        self.0
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(".")
    }
}

impl std::fmt::Display for Oid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.dotted())
    }
}

// --- Public key / signature algorithms ---------------------------------

/// rsaEncryption (1.2.840.113549.1.1.1)
pub const RSA_ENCRYPTION: Oid = Oid(&[1, 2, 840, 113549, 1, 1, 1]);
/// sha256WithRSAEncryption (1.2.840.113549.1.1.11)
pub const SHA256_WITH_RSA: Oid = Oid(&[1, 2, 840, 113549, 1, 1, 11]);
/// sha384WithRSAEncryption (1.2.840.113549.1.1.12)
pub const SHA384_WITH_RSA: Oid = Oid(&[1, 2, 840, 113549, 1, 1, 12]);
/// id-ecPublicKey (1.2.840.10045.2.1)
pub const EC_PUBLIC_KEY: Oid = Oid(&[1, 2, 840, 10045, 2, 1]);
/// prime256v1 / secp256r1 (1.2.840.10045.3.1.7)
pub const PRIME256V1: Oid = Oid(&[1, 2, 840, 10045, 3, 1, 7]);
/// secp384r1 (1.3.132.0.34)
pub const SECP384R1: Oid = Oid(&[1, 3, 132, 0, 34]);
/// ecdsa-with-SHA256 (1.2.840.10045.4.3.2)
pub const ECDSA_WITH_SHA256: Oid = Oid(&[1, 2, 840, 10045, 4, 3, 2]);
/// ecdsa-with-SHA384 (1.2.840.10045.4.3.3)
pub const ECDSA_WITH_SHA384: Oid = Oid(&[1, 2, 840, 10045, 4, 3, 3]);

// --- Post-quantum signature algorithms (FIPS 204 / LAMPS drafts) ---------

/// id-ml-dsa-44 (2.16.840.1.101.3.4.3.17), NIST CSOR arc.
pub const ML_DSA_44: Oid = Oid(&[2, 16, 840, 1, 101, 3, 4, 3, 17]);
/// id-ml-dsa-65 (2.16.840.1.101.3.4.3.18).
pub const ML_DSA_65: Oid = Oid(&[2, 16, 840, 1, 101, 3, 4, 3, 18]);
/// Composite ML-DSA-44 + ECDSA-P256-SHA256 (2.16.840.1.114027.80.8.1.4,
/// draft-ietf-lamps-pq-composite-sigs; code point not yet final).
pub const COMPOSITE_MLDSA44_ECDSA_P256: Oid = Oid(&[2, 16, 840, 1, 114027, 80, 8, 1, 4]);
/// Composite ML-DSA-65 + ECDSA-P384-SHA384 (2.16.840.1.114027.80.8.1.10,
/// draft-ietf-lamps-pq-composite-sigs; code point not yet final).
pub const COMPOSITE_MLDSA65_ECDSA_P384: Oid = Oid(&[2, 16, 840, 1, 114027, 80, 8, 1, 10]);

// --- Distinguished-name attribute types --------------------------------

/// id-at-commonName (2.5.4.3)
pub const AT_COMMON_NAME: Oid = Oid(&[2, 5, 4, 3]);
/// id-at-countryName (2.5.4.6)
pub const AT_COUNTRY: Oid = Oid(&[2, 5, 4, 6]);
/// id-at-localityName (2.5.4.7)
pub const AT_LOCALITY: Oid = Oid(&[2, 5, 4, 7]);
/// id-at-stateOrProvinceName (2.5.4.8)
pub const AT_STATE: Oid = Oid(&[2, 5, 4, 8]);
/// id-at-organizationName (2.5.4.10)
pub const AT_ORGANIZATION: Oid = Oid(&[2, 5, 4, 10]);
/// id-at-organizationalUnitName (2.5.4.11)
pub const AT_ORG_UNIT: Oid = Oid(&[2, 5, 4, 11]);

// --- Certificate extensions ---------------------------------------------

/// id-ce-subjectKeyIdentifier (2.5.29.14)
pub const EXT_SUBJECT_KEY_ID: Oid = Oid(&[2, 5, 29, 14]);
/// id-ce-keyUsage (2.5.29.15)
pub const EXT_KEY_USAGE: Oid = Oid(&[2, 5, 29, 15]);
/// id-ce-subjectAltName (2.5.29.17)
pub const EXT_SUBJECT_ALT_NAME: Oid = Oid(&[2, 5, 29, 17]);
/// id-ce-basicConstraints (2.5.29.19)
pub const EXT_BASIC_CONSTRAINTS: Oid = Oid(&[2, 5, 29, 19]);
/// id-ce-cRLDistributionPoints (2.5.29.31)
pub const EXT_CRL_DISTRIBUTION: Oid = Oid(&[2, 5, 29, 31]);
/// id-ce-certificatePolicies (2.5.29.32)
pub const EXT_CERT_POLICIES: Oid = Oid(&[2, 5, 29, 32]);
/// id-ce-authorityKeyIdentifier (2.5.29.35)
pub const EXT_AUTHORITY_KEY_ID: Oid = Oid(&[2, 5, 29, 35]);
/// id-ce-extKeyUsage (2.5.29.37)
pub const EXT_EXT_KEY_USAGE: Oid = Oid(&[2, 5, 29, 37]);
/// id-pe-authorityInfoAccess (1.3.6.1.5.5.7.1.1)
pub const EXT_AUTHORITY_INFO_ACCESS: Oid = Oid(&[1, 3, 6, 1, 5, 5, 7, 1, 1]);
/// Signed Certificate Timestamp list (1.3.6.1.4.1.11129.2.4.2)
pub const EXT_SCT_LIST: Oid = Oid(&[1, 3, 6, 1, 4, 1, 11129, 2, 4, 2]);

// --- Access methods & EKU purposes --------------------------------------

/// id-ad-ocsp (1.3.6.1.5.5.7.48.1)
pub const AD_OCSP: Oid = Oid(&[1, 3, 6, 1, 5, 5, 7, 48, 1]);
/// id-ad-caIssuers (1.3.6.1.5.5.7.48.2)
pub const AD_CA_ISSUERS: Oid = Oid(&[1, 3, 6, 1, 5, 5, 7, 48, 2]);
/// id-kp-serverAuth (1.3.6.1.5.5.7.3.1)
pub const KP_SERVER_AUTH: Oid = Oid(&[1, 3, 6, 1, 5, 5, 7, 3, 1]);
/// id-kp-clientAuth (1.3.6.1.5.5.7.3.2)
pub const KP_CLIENT_AUTH: Oid = Oid(&[1, 3, 6, 1, 5, 5, 7, 3, 2]);

// --- Certificate policy identifiers --------------------------------------

/// anyPolicy (2.5.29.32.0)
pub const CP_ANY_POLICY: Oid = Oid(&[2, 5, 29, 32, 0]);
/// CA/Browser Forum domain-validated (2.23.140.1.2.1)
pub const CP_DOMAIN_VALIDATED: Oid = Oid(&[2, 23, 140, 1, 2, 1]);
/// CA/Browser Forum organization-validated (2.23.140.1.2.2)
pub const CP_ORG_VALIDATED: Oid = Oid(&[2, 23, 140, 1, 2, 2]);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::der::parse_one;

    #[test]
    fn dotted_rendering() {
        assert_eq!(EXT_SUBJECT_ALT_NAME.dotted(), "2.5.29.17");
        assert_eq!(RSA_ENCRYPTION.to_string(), "1.2.840.113549.1.1.1");
    }

    #[test]
    fn all_oids_encode_as_valid_der() {
        for oid in [
            &RSA_ENCRYPTION,
            &SHA256_WITH_RSA,
            &SHA384_WITH_RSA,
            &EC_PUBLIC_KEY,
            &PRIME256V1,
            &SECP384R1,
            &ECDSA_WITH_SHA256,
            &ECDSA_WITH_SHA384,
            &ML_DSA_44,
            &ML_DSA_65,
            &COMPOSITE_MLDSA44_ECDSA_P256,
            &COMPOSITE_MLDSA65_ECDSA_P384,
            &AT_COMMON_NAME,
            &AT_COUNTRY,
            &AT_ORGANIZATION,
            &EXT_SUBJECT_KEY_ID,
            &EXT_KEY_USAGE,
            &EXT_SUBJECT_ALT_NAME,
            &EXT_BASIC_CONSTRAINTS,
            &EXT_CRL_DISTRIBUTION,
            &EXT_CERT_POLICIES,
            &EXT_AUTHORITY_KEY_ID,
            &EXT_EXT_KEY_USAGE,
            &EXT_AUTHORITY_INFO_ACCESS,
            &EXT_SCT_LIST,
            &AD_OCSP,
            &AD_CA_ISSUERS,
            &KP_SERVER_AUTH,
            &CP_DOMAIN_VALIDATED,
        ] {
            let enc = oid.encode();
            let parsed = parse_one(&enc).unwrap();
            assert_eq!(parsed.tag, 0x06, "OID {oid} should parse");
            assert!(!parsed.content.is_empty());
        }
    }

    #[test]
    fn sct_oid_uses_multibyte_arcs() {
        // 11129 needs two base-128 bytes.
        let enc = EXT_SCT_LIST.encode();
        assert_eq!(
            enc,
            vec![0x06, 0x0A, 0x2B, 0x06, 0x01, 0x04, 0x01, 0xD6, 0x79, 0x02, 0x04, 0x02]
        );
    }
}
