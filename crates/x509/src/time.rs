//! Calendar time for certificate validity periods.
//!
//! X.509 encodes validity as UTCTime (`YYMMDDHHMMSSZ`) for years before
//! 2050. All certificates in the workspace live comfortably inside that
//! window, so only UTCTime is emitted.

use crate::der;

/// A calendar timestamp (UTC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time {
    /// Full year, e.g. 2022.
    pub year: u16,
    /// Month 1–12.
    pub month: u8,
    /// Day 1–31.
    pub day: u8,
    /// Hour 0–23.
    pub hour: u8,
    /// Minute 0–59.
    pub minute: u8,
    /// Second 0–59.
    pub second: u8,
}

impl Time {
    /// Midnight on the given date.
    pub const fn date(year: u16, month: u8, day: u8) -> Self {
        Time {
            year,
            month,
            day,
            hour: 0,
            minute: 0,
            second: 0,
        }
    }

    /// The same instant `days` later (approximate calendar arithmetic:
    /// months are treated as 30 days, sufficient for validity spans).
    pub fn plus_days(self, days: u32) -> Time {
        let total = self.day as u32 - 1 + days;
        let month_total = self.month as u32 - 1 + total / 30;
        Time {
            year: self.year + (month_total / 12) as u16,
            month: (month_total % 12) as u8 + 1,
            day: (total % 30) as u8 + 1,
            ..self
        }
    }

    /// Format as `YYMMDDHHMMSSZ` (UTCTime, two-digit year per RFC 5280).
    pub fn to_utc_string(self) -> String {
        format!(
            "{:02}{:02}{:02}{:02}{:02}{:02}Z",
            self.year % 100,
            self.month,
            self.day,
            self.hour,
            self.minute,
            self.second
        )
    }

    /// DER-encode as UTCTime.
    pub fn encode(self) -> Vec<u8> {
        der::utc_time(&self.to_utc_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utc_format_matches_rfc_shape() {
        let t = Time::date(2021, 11, 27);
        assert_eq!(t.to_utc_string(), "211127000000Z");
        let enc = t.encode();
        assert_eq!(enc[0], 0x17);
        assert_eq!(enc[1], 13);
    }

    #[test]
    fn plus_days_rolls_over() {
        let t = Time::date(2022, 1, 1);
        let later = t.plus_days(90);
        assert_eq!(later.month, 4);
        assert_eq!(later.year, 2022);
        let next_year = t.plus_days(365);
        assert_eq!(next_year.year, 2023);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(Time::date(2022, 1, 1) < Time::date(2022, 6, 1));
        assert!(Time::date(2021, 12, 31) < Time::date(2022, 1, 1));
    }
}
