//! Property tests: every certificate this crate can build — including the
//! ML-DSA and hybrid algorithms of the certificate-era axis — encodes to
//! DER that parses back into a tree whose canonical re-encoding is
//! byte-identical, and the reader rejects truncated or non-minimal
//! ("overlong") length forms.

use proptest::prelude::*;
use quicert_x509::der::{self, DerError, DerValue};
use quicert_x509::ext::KeyUsageFlags;
use quicert_x509::{
    oid, Certificate, CertificateBuilder, DistinguishedName, Extension, KeyAlgorithm,
    SignatureAlgorithm, SubjectPublicKeyInfo,
};

/// Recursively re-encode a parsed DER value. Constructed nodes are rebuilt
/// from their parsed children, so a byte-identical result means the whole
/// tag/length/value tree survived the encode→parse→encode round trip.
fn reencode(value: &DerValue) -> Vec<u8> {
    if value.is_constructed() {
        if let Ok(children) = value.children() {
            let content: Vec<u8> = children.iter().flat_map(reencode).collect();
            return der::tlv(value.tag, &content);
        }
    }
    der::tlv(value.tag, &value.content)
}

const KEYS: [KeyAlgorithm; 8] = KeyAlgorithm::ALL_ERAS;

const SIGS: [SignatureAlgorithm; 8] = [
    SignatureAlgorithm::Sha256WithRsa2048,
    SignatureAlgorithm::Sha384WithRsa4096,
    SignatureAlgorithm::EcdsaSha256,
    SignatureAlgorithm::EcdsaSha384,
    SignatureAlgorithm::MlDsa44,
    SignatureAlgorithm::MlDsa65,
    SignatureAlgorithm::CompositeP256MlDsa44,
    SignatureAlgorithm::CompositeP384MlDsa65,
];

fn arbitrary_certificate(
    key_idx: usize,
    sig_idx: usize,
    seed: u64,
    cn: &str,
    sans: usize,
    scts: u8,
    ca: bool,
) -> Certificate {
    let issuer = DistinguishedName::ca("US", "Roundtrip Trust Services", "Roundtrip CA 1");
    let subject = if ca {
        DistinguishedName::ca("US", "Roundtrip Trust Services", cn)
    } else {
        DistinguishedName::cn(cn)
    };
    let mut builder = CertificateBuilder::new(
        issuer,
        subject,
        SubjectPublicKeyInfo::new(KEYS[key_idx % KEYS.len()], seed),
        SIGS[sig_idx % SIGS.len()],
    )
    .extension(Extension::BasicConstraints { ca, path_len: None })
    .extension(Extension::KeyUsage(if ca {
        KeyUsageFlags::ca()
    } else {
        KeyUsageFlags::leaf()
    }))
    .extension(Extension::SubjectKeyId { seed })
    .extension(Extension::AuthorityKeyId { seed: seed ^ 0xA17 });
    if !ca {
        let names: Vec<String> = (0..sans.max(1)).map(|i| format!("alt-{i}.{cn}")).collect();
        builder = builder
            .extension(Extension::SubjectAltNames(names))
            .extension(Extension::ExtKeyUsage(vec![oid::KP_SERVER_AUTH]))
            .extension(Extension::SctList {
                count: scts,
                seed: seed ^ 0x5C7,
            });
    }
    builder.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn certificates_roundtrip_byte_identically(
        key_idx in 0usize..8,
        sig_idx in 0usize..8,
        seed in any::<u64>(),
        cn in "[a-z]{1,12}\\.[a-z]{2,3}",
        sans in 0usize..5,
        scts in 0u8..4,
        ca_bit in any::<bool>(),
    ) {
        let cert = arbitrary_certificate(key_idx, sig_idx, seed, &cn, sans, scts, ca_bit);
        let encoded = cert.der();
        let parsed = der::parse_one(encoded).map_err(|e| TestCaseError(e.to_string()))?;
        prop_assert_eq!(parsed.tag, 0x30);
        let reencoded = reencode(&parsed);
        prop_assert_eq!(
            reencoded, encoded.to_vec(),
            "{:?}/{:?} did not roundtrip", KEYS[key_idx % 8], SIGS[sig_idx % 8]
        );
    }

    #[test]
    fn spki_roundtrips_for_every_algorithm(key_idx in 0usize..8, seed in any::<u64>()) {
        let spki = SubjectPublicKeyInfo::new(KEYS[key_idx % KEYS.len()], seed);
        let encoded = spki.encode();
        let parsed = der::parse_one(&encoded).map_err(|e| TestCaseError(e.to_string()))?;
        prop_assert_eq!(reencode(&parsed), encoded);
    }

    #[test]
    fn truncated_certificates_never_parse(
        key_idx in 0usize..8,
        seed in any::<u64>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let cert = arbitrary_certificate(key_idx, key_idx, seed, "trunc.example", 2, 2, false);
        let encoded = cert.der();
        // Any strict prefix must be rejected (Truncated), never mis-parsed.
        let cut = 1 + ((encoded.len() - 1) as f64 * cut_frac) as usize;
        let cut = cut.min(encoded.len() - 1);
        prop_assert_eq!(
            der::parse_one(&encoded[..cut]).unwrap_err(),
            DerError::Truncated
        );
    }

    #[test]
    fn overlong_length_forms_are_rejected(len in 0usize..0x80, tag in 0u8..0x40) {
        // The same short length encoded in the (forbidden) one-byte long
        // form: the reader must flag BadLength, not accept the alias.
        let mut overlong = vec![tag | 0x04, 0x81, len as u8];
        overlong.extend(vec![0xABu8; len]);
        prop_assert_eq!(der::parse_one(&overlong).unwrap_err(), DerError::BadLength);
        // Two-byte long form with a zero leading octet is equally illegal.
        let mut padded = vec![tag | 0x04, 0x82, 0x00, len as u8];
        padded.extend(vec![0xABu8; len]);
        prop_assert_eq!(der::parse_one(&padded).unwrap_err(), DerError::BadLength);
        // The minimal form of the same value parses fine.
        let minimal = der::tlv(tag | 0x04, &vec![0xAB; len]);
        prop_assert!(der::parse_one(&minimal).is_ok());
    }
}
