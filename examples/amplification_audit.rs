//! Amplification audit: what a spoofing adversary gets out of each
//! deployment — the §4.3 arc (Fig 9 telescope, the Meta PoP ZMap scan,
//! Fig 11 before/after disclosure, and the Table 3 policy ablation).
//!
//! ```sh
//! cargo run --release --example amplification_audit
//! ```

use quicert::core::experiments::amplification;
use quicert::core::{Campaign, CampaignConfig};

fn main() {
    let campaign = Campaign::new(CampaignConfig::small().with_domains(12_000));

    let fig9 = amplification::fig9(&campaign, 10);
    print!("{}", fig9.render());
    println!("paper: Cloudflare/Google mostly < 10x; Meta up to 45x\n");

    let pre = amplification::meta_pop_scan(&campaign, false);
    print!("{}", pre.render());
    println!("paper: no-service <=150 B; facebook ~7 kB (>5x); IG/WA ~35 kB (>28x)\n");

    let fig11 = amplification::fig11(&campaign, 3);
    print!("{}", fig11.render());
    println!("paper: October 2022 rescan shows a homogeneous fleet at ~5x mean\n");

    print!("{}", amplification::table3(&campaign).render());
    println!("note: only the final 3x-bytes rule actually bounds reflected *bytes*.");
}
