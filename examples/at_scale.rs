//! Scanning at scale: a 100,000-record population streamed through the
//! bounded-memory scan path, plus the population-scale report section.
//!
//! ```sh
//! cargo run --release --example at_scale
//! ```
//!
//! The population is never materialised: `World::streaming` holds only the
//! configuration and the CA ecosystem, `stream_domains` derives records in
//! chunks, and every chunk folds into mergeable summaries
//! (`QuicReachShard`, `HttpsScanShard`) that are bit-for-bit identical to
//! what a materialized scan of the same world would produce — at any
//! worker count and chunk size.

use quicert::core::experiments::scale;
use quicert::core::{Campaign, CampaignConfig, ScanEngine};
use quicert::pki::WorldConfig;
use quicert::quic::handshake::HandshakeClass;

const POPULATION: usize = 100_000;
const INITIAL: usize = 1362;

fn main() {
    println!("== quicert at scale: {POPULATION} domains, streamed ==\n");

    // One streaming engine: the world shell costs nothing to build; the
    // scan workers claim record chunks off a shared cursor (adaptively
    // sized by default) and keep only the folded summaries.
    let engine = ScanEngine::streaming(
        WorldConfig {
            domains: POPULATION,
            ..WorldConfig::default()
        },
        INITIAL,
        0, // one worker per core
    );
    let chunk = match engine.stream_chunk() {
        Some(size) => size.to_string(),
        None => "adaptive".to_string(),
    };
    println!(
        "memory model: {} workers x {chunk}-record chunks in flight; population \
         materialised: {}",
        engine.workers(),
        engine.world().populated(),
    );

    let funnel = engine.stream_https_scan();
    println!(
        "\n§3.1 funnel (streamed) — resolved {} / {}, A records {}, \
         TLS-reachable {}, QUIC services {}",
        funnel.resolved, funnel.total, funnel.a_records, funnel.tls_reachable, funnel.quic_services,
    );
    println!(
        "chain sizes — p50 {:.0} B, p90 {:.0} B, p99 {:.0} B (64-byte sketch \
         buckets), mean depth {:.2}",
        funnel.chain_der.quantile(0.5),
        funnel.chain_der.quantile(0.9),
        funnel.chain_der.quantile(0.99),
        funnel.chain_depth.mean(),
    );

    let reach = engine.stream_quicreach(INITIAL);
    println!(
        "\nquicreach @{INITIAL} (streamed) — {} probed, {} reachable",
        reach.total(),
        reach.classes.reachable(),
    );
    for class in [
        HandshakeClass::Amplification,
        HandshakeClass::MultiRtt,
        HandshakeClass::Retry,
        HandshakeClass::OneRtt,
    ] {
        println!(
            "  {:>14}: {:5.2}% of reachable",
            format!("{class:?}"),
            reach.classes.share_of_reachable(class),
        );
    }
    println!(
        "  wire bytes/probe: mean {:.0}, max {:.0}; RTTs: mean {:.2}",
        reach.wire_received.mean(),
        reach.wire_received.max(),
        reach.rtts.mean(),
    );
    // The scenario-class flyweight: only the first record of each class
    // was simulated; the hits replayed a cached outcome (bit-identically —
    // toggle with `with_memoization(false)` and compare).
    if let Some(stats) = engine.pump_stats() {
        let totals = stats.totals();
        let (hits, misses) = (totals.memo_hits, totals.memo_misses);
        println!(
            "  flyweight memo: {hits} hits / {misses} misses ({} distinct classes); \
             {:.1}% of probes replayed instead of simulated",
            totals.distinct_classes,
            100.0 * hits as f64 / (hits + misses).max(1) as f64,
        );
    }

    // Campaign telemetry: everything above also landed on the engine's
    // metrics registry — cache hit/miss per artifact family, pump totals,
    // fresh-vs-replayed probe counters, and per-phase handshake timing
    // histograms, all in Prometheus exposition format.
    println!("\n== telemetry tour: the same campaign as a metrics registry ==\n");
    let rendered = engine.metrics_registry().render_prometheus();
    for line in rendered.lines() {
        // Skip the host-dependent wall-clock gauge; everything else is
        // derived from simulated time and deterministic counters.
        if !line.contains("_wall_") {
            println!("{line}");
        }
    }

    // The population-scale ladder exactly as the full report renders it
    // (10k and 100k here; pass PAPER_SCALE_SIZES to climb to 1M).
    let campaign = Campaign::new(CampaignConfig::standard().with_domains(2_000));
    let rows = scale::population_scale(&campaign, &[10_000, POPULATION]);
    println!("\n{}", scale::render_population_scale(&rows));
    println!(
        "note: every row above is summaries-only — no Vec of per-record \
         results exists on the streaming path."
    );
}
