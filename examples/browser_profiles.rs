//! Table 1: browser Initial sizes and certificate-compression support, and
//! what they imply for the amplification limit each browser grants servers.
//!
//! ```sh
//! cargo run --release --example browser_profiles
//! ```

use quicert::core::experiments::compression;
use quicert::core::{Campaign, CampaignConfig};
use quicert::tls::browser;

fn main() {
    let campaign = Campaign::new(CampaignConfig::small().with_domains(4_000));

    let table1 = compression::table1(&campaign);
    print!("{}", table1.render());

    println!("\nimplied anti-amplification byte budgets (3x the Initial):");
    for profile in &table1.browsers {
        match profile.initial_size {
            Some(size) => println!("  {:<10} 3 x {size} = {} bytes", profile.name, 3 * size),
            None => println!("  {:<10} (no QUIC deployment)", profile.name),
        }
    }
    let (lo, hi) = browser::common_amplification_limits();
    println!("\nthe paper's two reference limits: {lo} and {hi} bytes");
    println!("paper Table 1: brotli support 96% of services; zlib/zstd 0.05% (Meta)");
}
