//! Certificate-ecosystem study: chain sizes, parent-chain consolidation,
//! crypto algorithm mix, and how much RFC 8879 compression helps — the
//! §4.2 arc of the paper (Figs 2b/6/7/8/14, Table 2, compression study).
//!
//! ```sh
//! cargo run --release --example certificate_study
//! ```

use quicert::compress::Algorithm;
use quicert::core::experiments::{certs, compression};
use quicert::core::{Campaign, CampaignConfig};

fn main() {
    let campaign = Campaign::new(CampaignConfig::small().with_domains(6_000));

    println!("{}", certs::fig2b(&campaign).render());

    let fig6 = certs::fig6(&campaign);
    print!("{}", fig6.render());
    println!("paper: medians 2329 B (QUIC) vs 4022 B (HTTPS-only); 35% over the limit\n");

    print!("{}", certs::fig7(&campaign, true).render("QUIC services"));
    print!(
        "{}",
        certs::fig7(&campaign, false).render("HTTPS-only services")
    );
    println!("paper: top-10 parent chains cover 96.5% (QUIC) vs 72% (HTTPS-only)\n");

    print!("{}", certs::render_fig8(&certs::fig8(&campaign)));
    print!("{}", certs::table2(&campaign).render());
    print!("{}", certs::fig14(&campaign).render());

    println!();
    for algorithm in Algorithm::ALL {
        let study = compression::compression_study(&campaign, algorithm, 10);
        print!("[{algorithm}] {}", study.render());
    }
    println!("\npaper: ~65% median compression rate keeps 99% of chains under the limit");
}
