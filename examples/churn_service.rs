//! Resident campaign service: drive a deterministic churn timeline with
//! delta scans and query point-in-time snapshots.
//!
//! ```sh
//! cargo run --release --example churn_service
//! ```
//!
//! A batch `Campaign` scans one frozen instant of the ecosystem. The
//! `CampaignService` keeps the campaign *resident*: certificates rotate
//! and get revoked, CA dictionaries drift, session-ticket keys roll over,
//! and whole providers migrate their PKI to post-quantum eras — all as
//! tick-indexed pure state transitions reproducible from (seed, tick).
//! Each snapshot is served by a delta scan that re-probes only the
//! churned segments, yet is bit-identical to a full rescan.

use quicert::churn::{ChurnState, Timeline};
use quicert::core::experiments::churn as churn_exp;
use quicert::core::{Campaign, CampaignConfig, CampaignService};
use quicert::pki::world::Provider;
use quicert::pki::CertificateEra;

fn main() {
    let campaign = Campaign::new(CampaignConfig::small().with_domains(4_000));

    // The demo timeline: sparse per-rank churn every tick, Cloudflare and
    // Google migrating to hybrid at ticks 2-3, Meta and the self-hosted
    // long tail to post-quantum at tick 5. Every event of every tick is a
    // pure function of (seed, tick):
    let config = churn_exp::era_migration_config(&campaign);
    let timeline = Timeline::new(config.churn.clone());
    println!(
        "timeline seed {:#x}: tick 1 draws {} events, replayable at any point",
        config.churn.seed,
        timeline.events_at(1).len(),
    );
    let at3 = ChurnState::at(&timeline, 3);
    println!(
        "state replayed at tick 3: {} events applied, {} ranks churned, \
         Cloudflare era {:?}\n",
        at3.events_applied,
        at3.churned_ranks().len(),
        at3.era_of(Provider::Cloudflare),
    );

    // The resident service: advance the clock and query snapshots. Only
    // the dirty segments re-probe; the merge with cached segment
    // summaries is bit-identical to a full rescan at that tick.
    let mut service = CampaignService::new(config);
    println!("{}\n", service.report_at(0));
    service.snapshot_at(1); // one sparse tick: a genuine delta scan
    println!("{}\n", service.report_at(5));
    for stats in service.tick_log() {
        println!(
            "  tick {}: probed {}/{} ({} of {} segments{})",
            stats.tick,
            stats.probed,
            stats.full_probe_count,
            stats.dirty_segments,
            stats.total_segments,
            if stats.all_changed {
                ", era migration"
            } else {
                ""
            },
        );
    }

    // Historical queries replay the state without disturbing the clock,
    // and the delta path is verifiable against the reference rescan:
    let historical = service.snapshot_at(2);
    let reference = service.full_rescan_at(2);
    assert_eq!(*historical, reference);
    println!(
        "\nsnapshot at tick 2 (clock stays at {}): {} reachable, \
         bit-identical to a full rescan",
        service.tick(),
        historical.reach.classes.reachable(),
    );

    println!(
        "\ntake-away: with commutative summary merges, a resident campaign\n\
         can track a churning ecosystem by re-probing only what changed —\n\
         the era-migration timeline shows 1-RTT share collapsing and chains\n\
         inflating ({:?} -> {:?}) without ever paying for a full rescan.",
        CertificateEra::Classical,
        CertificateEra::PostQuantum,
    );
}
