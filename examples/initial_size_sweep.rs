//! The Fig 3 sweep: how the client Initial size (1200–1472 bytes) shifts
//! handshake classes, plus the §4.1 load-balancer reachability effect.
//!
//! ```sh
//! cargo run --release --example initial_size_sweep
//! ```

use quicert::core::experiments::handshakes;
use quicert::core::{Campaign, CampaignConfig};

fn main() {
    let campaign = Campaign::new(CampaignConfig::small().with_domains(3_000));

    let fig3 = handshakes::fig3(&campaign);
    print!("{}", fig3.render());
    println!(
        "paper: amplification is size-independent; multi-RTT shrinks and 1-RTT \
         grows (~1%) toward large Initials; reachability drops ~1.2%\n"
    );

    if let (Some(small), Some(large)) = (fig3.at(1200), fig3.at(1472)) {
        println!(
            "bar heights: {} reachable at 1200 vs {} at 1472 ({} services lost to \
             load-balancer encapsulation)\n",
            small.reachable(),
            large.reachable(),
            small.reachable().saturating_sub(large.reachable()),
        );
    }

    print!("{}", handshakes::reachability(&campaign).render());
    println!("paper: top-1k ranks lose 25% reachability, top-10k 12%, overall 1.2%");

    print!(
        "\n{}",
        handshakes::render_rank_groups(&handshakes::rank_groups(&campaign))
    );
    println!("paper (Figs 12/13): adoption and classes are flat across rank groups,");
    println!("except 1-RTT handshakes concentrating in the most popular ranks (3.02%).");
}
