//! Scenario matrix: the same QUIC population scanned under every
//! [`NetworkProfile`] × a few client Initial sizes.
//!
//! The paper measures from real networks, where paths are lossy, long and
//! sometimes tunneled. This example shows how those conditions move the
//! handshake-class shares: loss trades amplification handshakes for extra
//! rounds, universal tunnel encapsulation reproduces the §4.1 MTU failure
//! for large Initials, and a long fat path's jitter collapses the
//! timing-based 1-RTT/Amplification classes into Multi-RTT while leaving
//! reachability untouched.
//!
//! ```sh
//! cargo run --release --example network_conditions
//! ```

use quicert::core::{Campaign, CampaignConfig};
use quicert::netsim::NetworkProfile;
use quicert::quic::handshake::HandshakeClass;
use quicert::scanner::quicreach;

fn main() {
    let campaign = Campaign::new(CampaignConfig::small().with_domains(3_000));
    println!(
        "world: {} domains, {} QUIC services\n",
        campaign.world().domains().len(),
        campaign.world().quic_services().count(),
    );

    println!(
        "{:<10} {:>8} | {:>7} {:>7} {:>7} {:>9} | {:>6} {:>7}",
        "profile", "initial", "ampl %", "multi %", "1RTT %", "unreach %", "drops", "corrupt"
    );
    for profile in NetworkProfile::ALL {
        for initial_size in [1200usize, 1362, 1472] {
            let results = campaign.quicreach_profiled(profile, initial_size);
            let summary = quicreach::summarize(initial_size, &results);
            let drops: u64 = results.iter().map(|r| r.fault_drops).sum();
            let corruptions: u64 = results.iter().map(|r| r.fault_corruptions).sum();
            println!(
                "{:<10} {:>8} | {:>7.1} {:>7.1} {:>7.2} {:>9.1} | {:>6} {:>7}",
                profile.name(),
                initial_size,
                summary.share_of_reachable(HandshakeClass::Amplification),
                summary.share_of_reachable(HandshakeClass::MultiRtt),
                summary.share_of_reachable(HandshakeClass::OneRtt),
                summary.share_of_all(HandshakeClass::Unreachable),
                drops,
                corruptions,
            );
        }
        println!();
    }

    println!("ideal reproduces the paper's Fig 3 shares; lossy trades amplification for");
    println!("extra rounds; long-fat jitter defeats timing-based 1-RTT classification;");
    println!("tunneled wipes out the largest Initials exactly like the load-balancer");
    println!("deployments of §4.1 — now for the whole population.");
}
