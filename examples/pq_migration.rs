//! PQ migration: re-run the paper's headline measurements against a world
//! whose PKI has moved to hybrid (ECDSA+ML-DSA) and pure ML-DSA chains.
//!
//! ```sh
//! cargo run --release --example pq_migration
//! ```

use quicert::core::experiments::pq;
use quicert::core::{Campaign, CampaignConfig};
use quicert::pki::CertificateEra;
use quicert::quic::handshake::HandshakeClass;
use quicert::scanner::quicreach;

fn main() {
    let campaign = Campaign::new(CampaignConfig::small().with_domains(4_000));
    let world = campaign.world();
    println!(
        "world: {} domains, {} QUIC services — same population in every era,\n\
         only the keys and signatures change (ML-DSA-44/65 per FIPS 204)\n",
        world.domains().len(),
        world.quic_services().count(),
    );

    // Headline: class shares per era at the default Initial size.
    let initial = campaign.config().default_initial;
    println!("handshake classes at Initial = {initial} bytes:");
    for era in CertificateEra::ALL {
        let results = campaign.quicreach_era(era, quicert::netsim::NetworkProfile::Ideal, initial);
        let summary = quicreach::summarize(initial, &results);
        println!(
            "  {:<13} 1-RTT {:>5.2}%   multi-RTT {:>5.1}%   amplification {:>5.1}%",
            era.name(),
            summary.share_of_reachable(HandshakeClass::OneRtt),
            summary.share_of_reachable(HandshakeClass::MultiRtt),
            summary.share_of_reachable(HandshakeClass::Amplification),
        );
    }

    println!();
    println!(
        "{}",
        pq::render_one_rtt_survivors(&pq::one_rtt_survivors(&campaign))
    );
    println!("{}", pq::render_era_matrix(&pq::era_matrix(&campaign)));
    println!(
        "{}",
        pq::render_compression_degradation(&pq::compression_degradation(&campaign, 20))
    );

    println!(
        "take-away: the certificate bytes the paper identified as the QUIC\n\
         bottleneck multiply under PQC — the rare 1-RTT population all but\n\
         vanishes, every compliant deployment pays extra round trips, and\n\
         RFC 8879 compression no longer squeezes chains under the 3x budget.\n\
         Session resumption (see examples/resumption.rs) is era-independent\n\
         and remains the strongest mitigation."
    );
}
