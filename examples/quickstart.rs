//! Quickstart: generate a small world, classify every QUIC handshake, and
//! print the paper's headline numbers, followed by a trimmed campaign
//! report that *says* which sections it skipped.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use quicert::core::{full_report, Campaign, CampaignConfig, ReportOptions};
use quicert::quic::handshake::HandshakeClass;
use quicert::scanner::quicreach;

fn main() {
    // 4k domains is enough for stable shares and runs in seconds.
    let campaign = Campaign::new(CampaignConfig::small().with_domains(4_000));
    let world = campaign.world();
    println!(
        "world: {} domains, {} QUIC services, {} HTTPS-only services",
        world.domains().len(),
        world.quic_services().count(),
        world.https_only_services().count(),
    );

    let results = campaign.quicreach_default();
    let summary = quicreach::summarize(campaign.config().default_initial, &results);
    println!(
        "\nhandshake classes at Initial = {} bytes ({} reachable services):",
        summary.initial_size,
        summary.reachable()
    );
    for class in [
        HandshakeClass::Amplification,
        HandshakeClass::MultiRtt,
        HandshakeClass::Retry,
        HandshakeClass::OneRtt,
    ] {
        println!(
            "  {:<14} {:>6.2}%",
            class.label(),
            summary.share_of_reachable(class)
        );
    }

    println!("\npaper (Fig 3 @1362): Amplification 61%, Multi-RTT 38%, RETRY 0.07%, 1-RTT 0.75%");
    println!("take-away: a-priori DoS protection and fast 1-RTT handshakes are rare in the wild.");

    // A quick partial report: expensive sections off, and every skipped
    // section named up front instead of silently omitted.
    let options = ReportOptions {
        telescope_per_provider: 2,
        fig11_reps: 1,
        compression_stride: 40,
        full_sweep: false,
        guidance_mitigation: false,
        network_profiles: false,
        resumption: true,
        pq_eras: false,
        population_scale: false,
        chaos: false,
        churn: false,
        scale_sizes: [0, 0, 0],
    };
    let skipped = options.skipped();
    if skipped.is_empty() {
        println!("\n== full campaign report (no sections skipped) ==");
    } else {
        println!("\n== quick campaign report — skipped sections: ==");
        for section in &skipped {
            println!("  - {section}");
        }
    }
    println!("\n{}", full_report(&campaign, options));
}
