//! Quickstart: generate a small world, classify every QUIC handshake, and
//! print the paper's headline numbers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use quicert::core::{Campaign, CampaignConfig};
use quicert::quic::handshake::HandshakeClass;
use quicert::scanner::quicreach;

fn main() {
    // 4k domains is enough for stable shares and runs in seconds.
    let campaign = Campaign::new(CampaignConfig::small().with_domains(4_000));
    let world = campaign.world();
    println!(
        "world: {} domains, {} QUIC services, {} HTTPS-only services",
        world.domains().len(),
        world.quic_services().count(),
        world.https_only_services().count(),
    );

    let results = campaign.quicreach_default();
    let summary = quicreach::summarize(campaign.config().default_initial, &results);
    println!(
        "\nhandshake classes at Initial = {} bytes ({} reachable services):",
        summary.initial_size,
        summary.reachable()
    );
    for class in [
        HandshakeClass::Amplification,
        HandshakeClass::MultiRtt,
        HandshakeClass::Retry,
        HandshakeClass::OneRtt,
    ] {
        println!(
            "  {:<14} {:>6.2}%",
            class.label(),
            summary.share_of_reachable(class)
        );
    }

    println!("\npaper (Fig 3 @1362): Amplification 61%, Multi-RTT 38%, RETRY 0.07%, 1-RTT 0.75%");
    println!("take-away: a-priori DoS protection and fast 1-RTT handshakes are rare in the wild.");
}
