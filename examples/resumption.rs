//! Session resumption: cold-vs-warm handshake deltas across network
//! profiles, and the ticket-policy axis.
//!
//! The paper's §5 guidance is that resumption sidesteps the whole
//! certificate/amplification interplay: a resumed handshake authenticates
//! with a session ticket and never puts the chain on the wire. This example
//! scans the same population twice per profile — a cold, ticket-issuing
//! first visit and a warm revisit — and prints what the revisit saved.
//!
//! ```sh
//! cargo run --release --example resumption
//! ```

use quicert::core::experiments::resumption::{
    budget_sweep, policy_comparison, render_budget_sweep, render_policy_comparison,
    render_resumption_matrix, resumption_matrix, BUDGET_SWEEP_SIZES,
};
use quicert::core::{Campaign, CampaignConfig};

fn main() {
    let campaign = Campaign::new(CampaignConfig::small().with_domains(3_000));
    println!(
        "world: {} domains, {} QUIC services\n",
        campaign.world().domains().len(),
        campaign.world().quic_services().count(),
    );

    // Cold vs resumed per network profile (warm-after-first-visit policy).
    let matrix = resumption_matrix(&campaign);
    println!("{}", render_resumption_matrix(&matrix));

    // The policy axis: baseline, working mitigation, expired tickets.
    println!(
        "{}",
        render_policy_comparison(&policy_comparison(&campaign))
    );

    // Resumed flights vs the 3x anti-amplification budget per Initial size.
    println!(
        "{}",
        render_budget_sweep(&budget_sweep(&campaign, &BUDGET_SWEEP_SIZES))
    );

    // Headline deltas on the ideal profile.
    let ideal = &matrix[0].agg;
    println!(
        "ideal-path headline: {}/{} reachable services resumed; certificate bytes \
         {} -> {}; every cold multi-RTT handshake ({} services) saved >= 1 RTT \
         (mean {:.2}); {} resumed flights exceeded the 3x budget",
        ideal.resumed,
        ideal.cold_reachable,
        ideal.cold_cert_bytes,
        ideal.warm_cert_bytes,
        ideal.cold_multi_rtt,
        ideal.mean_rtts_saved_multi,
        ideal.resumed_over_budget,
    );
    println!(
        "\ntake-away: the certificate chain is a *first-contact* cost — a ticket \
         cache turns the paper's multi-RTT population into 1-RTT revisits."
    );
}
