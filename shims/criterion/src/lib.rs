//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! The workspace builds in offline environments, so the real crates.io
//! `criterion` cannot be fetched. This shim keeps the exact call surface the
//! benches in `quicert-bench` use — `Criterion::default().sample_size(..)`,
//! `bench_function`, `benchmark_group` with `Throughput`, and the
//! `criterion_group!` / `criterion_main!` macros — and measures wall time
//! with `std::time::Instant`, printing one line per benchmark.
//!
//! It intentionally skips criterion's statistics (outlier rejection,
//! bootstrap confidence intervals, HTML reports): the benches remain useful
//! for relative comparisons and for CI smoke coverage, nothing more.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of measured iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, None, f);
        self
    }

    /// Open a named group of benchmarks sharing a throughput annotation.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks (`compress_chain/brotli`, ...).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate the group with per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.criterion.sample_size, self.throughput, f);
        self
    }

    /// Finish the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Passed to the closure given to `bench_function`; `iter` does the timing.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f` after one warm-up call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        iters: sample_size as u64,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / bencher.iters.max(1) as f64;
    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if per_iter > 0.0 => {
            format!(
                "  ({:.1} MiB/s)",
                bytes as f64 / per_iter / (1024.0 * 1024.0)
            )
        }
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            format!("  ({:.0} elem/s)", n as f64 / per_iter)
        }
        _ => String::new(),
    };
    println!(
        "bench {name:<40} {:>12.3} ms/iter over {} iters{rate}",
        per_iter * 1e3,
        bencher.iters,
    );
}

/// Define a function running a list of benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("trivial_add", |b| b.iter(|| 1u64 + 1));
        let mut group = c.benchmark_group("group");
        group.throughput(Throughput::Bytes(8));
        group.bench_function("xor", |b| b.iter(|| 5u64 ^ 3));
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = trivial
    }

    #[test]
    fn group_macro_runs_targets() {
        benches();
    }
}
