//! Minimal, dependency-free stand-in for the `proptest` property-testing
//! crate.
//!
//! The workspace builds in offline environments, so the real crates.io
//! `proptest` cannot be fetched. This shim reimplements the slice of the API
//! the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   header and `name in strategy` argument bindings;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * strategies: integer and float ranges, [`any`], string literals
//!   interpreted as a small regex subset, and [`collection::vec`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! its case number and seed so it can be replayed deterministically. Case
//! generation is a pure function of `(test name, case index)`, which keeps
//! every run reproducible without a persistence file.

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

// ------------------------------------------------------------------- rng --

/// Deterministic SplitMix64 generator backing all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for one `(test, case)` pair — a pure function of both.
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
        for &b in test_name.as_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: hash ^ (case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform double in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ------------------------------------------------------------ strategies --

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),+) => {
        $(impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $ty
            }
        })+
    };
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($ty:ty),+) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        })+
    };
}
impl_strategy_int_range!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// String literals are strategies generating matches of a regex subset:
/// literal characters, `\`-escapes, character classes (`[a-z0-9_]`), and
/// `{m,n}` / `{n}` repetition counts.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0;
    while i < chars.len() {
        let candidates: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unterminated class in {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .unwrap_or_else(|| panic!("unterminated repetition in {pattern:?}"));
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("repetition lower bound"),
                    hi.trim().parse().expect("repetition upper bound"),
                ),
                None => {
                    let n: u64 = body.trim().parse().expect("repetition count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        assert!(!candidates.is_empty(), "empty alternative in {pattern:?}");
        let n = lo + rng.below(hi - lo + 1);
        for _ in 0..n {
            out.push(candidates[rng.below(candidates.len() as u64) as usize]);
        }
    }
    out
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s of an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::generate(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// --------------------------------------------------------------- harness --

/// Per-test configuration (only the case count is honoured).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property within one generated case.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, proptest, Arbitrary, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Assert a condition inside a property, failing only the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property, failing only the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Define property tests: each function runs `config.cases` times with its
/// arguments drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($config:expr; $(
        #[test]
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "property {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(v in 10u64..20, f in 0.0f64..1.0) {
            prop_assert!((10..20).contains(&v));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(xs in crate::collection::vec(any::<u8>(), 2..5)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 5);
        }

        #[test]
        fn patterns_generate_matches(s in "[a-c]{2,4}\\.[xy]{1,2}") {
            let (name, tld) = s.split_once('.').expect("dot");
            prop_assert!((2..=4).contains(&name.len()));
            prop_assert!((1..=2).contains(&tld.len()));
            prop_assert!(name.chars().all(|c| ('a'..='c').contains(&c)));
            prop_assert!(tld.chars().all(|c| c == 'x' || c == 'y'));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
