//! # quicert — On the Interplay between TLS Certificates and QUIC Performance
//!
//! A from-scratch Rust reproduction of Nawrocki et al., CoNEXT '22
//! (DOI 10.1145/3555050.3569123): the measurement toolchain, the QUIC
//! handshake mechanics it probes, the X.509/TLS substrate, and a calibrated
//! synthetic web population standing in for the paper's 1M-domain Internet
//! scan.
//!
//! ## Quick start
//!
//! ```
//! use quicert::core::{Campaign, CampaignConfig};
//! use quicert::scanner::quicreach;
//!
//! // A small deterministic world (2k domains).
//! let campaign = Campaign::new(CampaignConfig::small());
//! let results = campaign.quicreach_default();
//! let summary = quicreach::summarize(1362, &results);
//! // The paper's headline: most QUIC handshakes amplify or need extra RTTs.
//! assert!(summary.amplification + summary.multi_rtt > summary.one_rtt);
//! ```
//!
//! ## Crate map
//!
//! * [`netsim`] — deterministic network simulation substrate
//! * [`x509`] — DER / X.509 v3 certificates with per-field size attribution
//! * [`compress`] — RFC 8879-style certificate compression (three profiles)
//! * [`tls`] — TLS 1.3 handshake messages and browser profiles
//! * [`quic`] — QUIC v1 handshake engine with real-world server behaviours
//! * [`obs`] — lock-free metrics registry, Prometheus exposition, and
//!   handshake phase timelines
//! * [`session`] — TLS session tickets, STEK rotation, the client cache
//!   and the resumption-policy scenario axis
//! * [`pki`] — the CA ecosystem, ranked world generator, and the
//!   post-quantum `CertificateEra` scenario axis
//! * [`churn`] — deterministic tick-indexed ecosystem churn timelines
//!   (rotation, CA drift, revocation, STEK rollover, era migration)
//! * [`scanner`] — quicreach / QScanner / telescope / ZMap counterparts
//! * [`analysis`] — CDFs, statistics, table rendering
//! * [`core`] — campaign orchestration: the `ScanEngine` artifact store
//!   (parallel, uniformly cached scans) plus every table and figure

pub use quicert_analysis as analysis;
pub use quicert_churn as churn;
pub use quicert_compress as compress;
pub use quicert_core as core;
pub use quicert_netsim as netsim;
pub use quicert_obs as obs;
pub use quicert_pki as pki;
pub use quicert_quic as quic;
pub use quicert_scanner as scanner;
pub use quicert_session as session;
pub use quicert_tls as tls;
pub use quicert_x509 as x509;
