//! End-to-end integration: the full campaign pipeline across all crates.

use quicert::core::experiments::{amplification, certs, compression, handshakes};
use quicert::core::{full_report, Campaign, CampaignConfig, ReportOptions};
use quicert::quic::handshake::HandshakeClass;
use quicert::scanner::quicreach;

fn campaign() -> Campaign {
    Campaign::new(CampaignConfig::small().with_domains(3_000).with_seed(0xE2E))
}

#[test]
fn headline_numbers_reproduce_the_paper_shape() {
    let c = campaign();
    let summary = quicreach::summarize(1362, &c.quicreach_default());

    // Fig 3 at the default Initial: amplification dominates, then
    // multi-RTT; Retry and 1-RTT are rare.
    assert!(summary.amplification > summary.multi_rtt);
    assert!(summary.multi_rtt > 10 * summary.one_rtt.max(1) / 2);
    assert!(summary.one_rtt < summary.reachable() / 20);
    assert!(summary.retry <= summary.one_rtt);

    // Fig 6: QUIC chains are smaller.
    let fig6 = certs::fig6(&c);
    assert!(fig6.quic.median() < fig6.https_only.median());

    // Fig 4: complete-handshake amplification is bounded.
    let fig4 = handshakes::fig4(&c);
    assert!(fig4.range().1 < 7.0);

    // Fig 5: TLS payload is the dominant cause of multi-RTT.
    let fig5 = handshakes::fig5(&c);
    assert!(fig5.tls_alone_exceeds() > 0.6);
}

#[test]
fn cloudflare_padding_constant_is_size_independent() {
    // §4.1: the stray padding of the missing-coalescence behaviour is a
    // constant, independent of the TLS payload size.
    let c = campaign();
    let world = c.world();
    let mut paddings = std::collections::HashSet::new();
    for record in world
        .quic_services()
        .filter(|d| {
            matches!(
                d.quic.as_ref().unwrap().behavior,
                quicert::pki::world::BehaviorKind::CloudflareLike
            )
        })
        .take(20)
    {
        let result = quicreach::scan_service(world, record, 1362);
        if result.class == HandshakeClass::Amplification {
            paddings.insert(result.padding_received);
        }
    }
    assert!(
        paddings.len() <= 3,
        "stray padding should be near-constant, saw {paddings:?}"
    );
}

#[test]
fn compression_study_and_table1_are_consistent() {
    let c = campaign();
    let t1 = compression::table1(&c);
    // Brotli ratio measured in-the-wild matches the synthetic study's
    // ballpark (paper: 73% vs ~65%).
    let study = compression::compression_study(&c, quicert::compress::Algorithm::Brotli, 20);
    let wild = t1.mean_ratio(quicert::compress::Algorithm::Brotli);
    assert!(
        (wild - study.ratios.median()).abs() < 0.25,
        "wild {wild} vs study {}",
        study.ratios.median()
    );
}

#[test]
fn table3_shows_monotone_policy_tightening_in_bytes() {
    let c = campaign();
    let t3 = amplification::table3(&c);
    let final_policy = t3.rows.last().unwrap();
    assert!(final_policy.1 <= 3.0 + 1e-9);
    assert!(t3.rows[0].1 > final_policy.1);
}

#[test]
fn full_report_runs_end_to_end() {
    let c = Campaign::new(CampaignConfig::small().with_domains(1_200).with_seed(7));
    let report = full_report(
        &c,
        ReportOptions {
            telescope_per_provider: 2,
            fig11_reps: 1,
            compression_stride: 40,
            full_sweep: false,
            guidance_mitigation: false,
            network_profiles: true,
            resumption: true,
            pq_eras: true,
            population_scale: true,
            chaos: true,
            churn: true,
            scale_sizes: [0, 0, 0],
        },
    );
    assert!(
        report.len() > 2_000,
        "report has substance: {}",
        report.len()
    );
}
