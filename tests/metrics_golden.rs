//! Golden metrics-exposition regression: run a pinned serial streaming
//! campaign, render its engine registry in Prometheus text format, and
//! compare byte-for-byte against a checked-in snapshot.
//!
//! The registry is deterministic by construction — every value is a count
//! of deterministic work or a histogram over *simulated* time — except the
//! wall-clock fold gauge, whose name carries `_wall_` precisely so this
//! test (and any other reproducible consumer) can redact it by substring.
//! A drifted snapshot therefore means a metric was renamed, re-labelled,
//! re-binned, or its instrumentation points moved — all things a human
//! should see in review.
//!
//! To (re)generate the snapshot after an intentional metrics change:
//!
//! ```sh
//! QUICERT_BLESS=1 cargo test --test metrics_golden
//! ```

use std::fs;
use std::path::PathBuf;

use quicert::core::ScanEngine;
use quicert::netsim::NetworkProfile;
use quicert::pki::{CertificateEra, WorldConfig};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Replace the value of every non-comment line whose metric name contains
/// `_wall_` — the registry's only wall-clock (nondeterministic) series.
fn redact_wall_clock(rendered: &str) -> String {
    rendered
        .lines()
        .map(|line| {
            if !line.starts_with('#') && line.contains("_wall_") {
                let name = line.split_whitespace().next().unwrap_or(line);
                format!("{name} <wall-clock redacted>\n")
            } else {
                format!("{line}\n")
            }
        })
        .collect()
}

/// The pinned campaign: a small streaming world scanned serially (one
/// worker, so chunk claiming and per-worker memo splits cannot race), with
/// a repeated request to exercise the cache-hit counters and a second era
/// to exercise labelled series.
fn pinned_registry_render() -> String {
    let engine = ScanEngine::streaming(
        WorldConfig {
            domains: 600,
            seed: 0x0B5E,
            ..WorldConfig::default()
        },
        1362,
        1,
    );
    engine.stream_quicreach(1362);
    engine.stream_quicreach(1362); // cache hit
    engine.stream_quicreach_era(CertificateEra::PostQuantum, NetworkProfile::Ideal, 1362);
    engine.stream_https_scan();
    redact_wall_clock(&engine.metrics_registry().render_prometheus())
}

#[test]
fn metrics_exposition_matches_golden_snapshot() {
    let golden_path = golden_dir().join("metrics.prom");
    let got = pinned_registry_render();

    if std::env::var_os("QUICERT_BLESS").is_some_and(|v| v != "0") {
        fs::create_dir_all(golden_dir()).expect("create tests/golden");
        fs::write(&golden_path, &got).expect("write golden snapshot");
        eprintln!("blessed {} ({} bytes)", golden_path.display(), got.len());
        return;
    }

    let want = fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run `QUICERT_BLESS=1 cargo test \
             --test metrics_golden` to generate it",
            golden_path.display()
        )
    });

    if got != want {
        let actual_path = golden_dir().join("metrics.actual.prom");
        let _ = fs::write(&actual_path, &got);
        let first_diff = got
            .lines()
            .zip(want.lines())
            .enumerate()
            .find(|(_, (g, w))| g != w);
        match first_diff {
            Some((line, (g, w))) => panic!(
                "metrics exposition drifted from the golden snapshot at line {}:\n  \
                 golden: {w}\n  actual: {g}\nfull output written to {}; if the \
                 change is intentional, re-bless with QUICERT_BLESS=1",
                line + 1,
                actual_path.display()
            ),
            None => panic!(
                "metrics exposition drifted from the golden snapshot (lengths {} vs \
                 {}); full output written to {}; if the change is intentional, \
                 re-bless with QUICERT_BLESS=1",
                got.len(),
                want.len(),
                actual_path.display()
            ),
        }
    }
}

#[test]
fn pinned_exposition_is_deterministic_across_campaigns() {
    // Two independent engines over the same configuration must render the
    // same registry bytes — the snapshot above only helps if this holds.
    assert_eq!(pinned_registry_render(), pinned_registry_render());
}
