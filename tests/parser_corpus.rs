//! Corpus-driven parser robustness: every wire-facing parser fed
//! systematically mangled inputs — truncations, single-bit flips, byte
//! stomps (which turn length fields into overlong claims), and
//! hand-crafted overlong DER forms — must return a clean rejection
//! (`None` / `Err` / `Malformed`), never panic.
//!
//! The chaos campaign axis corrupts live datagrams, so every one of these
//! parsers sees attacker-grade garbage in ordinary scans; the CID-length
//! panic this suite's datagram corpus pins down was found exactly that
//! way. Valid seed inputs live in `tests/corpus/` so the mangling always
//! starts from structurally real bytes (mutations of valid inputs reach
//! far deeper than random noise). Regenerate them after an intentional
//! encoder change with:
//!
//! ```sh
//! QUICERT_BLESS=1 cargo test --test parser_corpus
//! ```

use std::fs;
use std::net::Ipv4Addr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use quicert::netsim::{Endpoint, SimTime};
use quicert::quic::packet::parse_datagram;
use quicert::quic::server::parse_compression_offers;
use quicert::quic::{ClientConfig, ClientConn};
use quicert::session::{TicketConfig, TicketIssuer, TicketValidation, TICKET_LEN};
use quicert::tls::{
    client_hello, new_session_ticket, parse_new_session_ticket, parse_psk_offer, parse_server_name,
    ClientHelloParams, PskOffer,
};
use quicert::x509::der::{parse_one, DerValue};
use quicert::x509::{
    CertificateBuilder, DistinguishedName, KeyAlgorithm, SignatureAlgorithm, SubjectPublicKeyInfo,
};

const SEED: u64 = 0xC0_4E22;
const SNI: &str = "corpus.example";
const NOW_SECS: u64 = 9_000;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

// ------------------------------------------------------------ seeds --

fn ticket_issuer() -> TicketIssuer {
    TicketIssuer::new(0x5EED_57E4, TicketConfig::default())
}

fn seed_ticket_identity() -> Vec<u8> {
    ticket_issuer().issue(SNI, NOW_SECS - 120, 7)
}

fn seed_client_hello() -> Vec<u8> {
    client_hello(&ClientHelloParams {
        server_name: SNI.to_string(),
        compression: quicert::compress::Algorithm::ALL.to_vec(),
        psk: Some(PskOffer {
            identity: seed_ticket_identity(),
            obfuscated_age: 123_456,
        }),
        seed: SEED,
    })
}

fn seed_new_session_ticket() -> Vec<u8> {
    new_session_ticket(7_200, 0xA6E_ADD, &seed_ticket_identity(), SEED)
}

fn seed_certificate_der() -> Vec<u8> {
    CertificateBuilder::new(
        DistinguishedName::ca("US", "Corpus CA", "Corpus Root"),
        DistinguishedName::cn(SNI),
        SubjectPublicKeyInfo::new(KeyAlgorithm::EcdsaP256, 3),
        SignatureAlgorithm::Sha256WithRsa2048,
    )
    .build()
    .der()
    .to_vec()
}

fn seed_initial_datagram() -> Vec<u8> {
    let server = Ipv4Addr::new(198, 51, 100, 44);
    let mut client = ClientConn::new(ClientConfig::scanner(1362, server, SEED));
    let mut out = Vec::new();
    client.start(SimTime::ZERO, &mut out);
    out.pop()
        .expect("client emits its Initial on start")
        .payload
}

/// Every corpus file: name on disk and the encoder that (re)generates it.
fn corpus_seeds() -> Vec<(&'static str, Vec<u8>)> {
    vec![
        ("client_hello_psk.bin", seed_client_hello()),
        ("new_session_ticket.bin", seed_new_session_ticket()),
        ("ticket_identity.bin", seed_ticket_identity()),
        ("certificate.der", seed_certificate_der()),
        ("initial_datagram.bin", seed_initial_datagram()),
    ]
}

/// Load one corpus file, blessing it from the encoder when asked to.
fn corpus(name: &str) -> Vec<u8> {
    let path = corpus_dir().join(name);
    if std::env::var_os("QUICERT_BLESS").is_some_and(|v| v != "0") {
        let (_, bytes) = corpus_seeds()
            .into_iter()
            .find(|(n, _)| *n == name)
            .expect("known corpus seed");
        fs::create_dir_all(corpus_dir()).expect("create tests/corpus");
        fs::write(&path, &bytes).expect("write corpus seed");
        return bytes;
    }
    fs::read(&path).unwrap_or_else(|e| {
        panic!(
            "missing corpus seed {} ({e}); run `QUICERT_BLESS=1 cargo test \
             --test parser_corpus` to generate it",
            path.display()
        )
    })
}

// -------------------------------------------------------- mutations --

/// Deterministic position sequence (splitmix-style; no RNG crate, no
/// wall-clock dependence, same corpus on every run).
fn positions(seed: u64, bound: usize, count: usize) -> Vec<usize> {
    let mut z = seed;
    (0..count)
        .map(|_| {
            z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut x = z;
            x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (x ^ (x >> 31)) as usize % bound.max(1)
        })
        .collect()
}

/// Truncations (every length on short inputs, a spread on long ones),
/// single-bit flips, and 0x00/0xFF byte stomps — the stomps are what turn
/// interior length prefixes into overlong claims.
fn mutants(seed_bytes: &[u8]) -> Vec<(String, Vec<u8>)> {
    let mut out = Vec::new();
    let n = seed_bytes.len();
    let lengths: Vec<usize> = if n <= 64 {
        (0..n).collect()
    } else {
        (0..64).map(|i| i * n / 64).collect()
    };
    for len in lengths {
        out.push((format!("truncated to {len}"), seed_bytes[..len].to_vec()));
    }
    for bit in positions(0xB17F_11B5, n * 8, 192) {
        let mut m = seed_bytes.to_vec();
        m[bit / 8] ^= 1 << (bit % 8);
        out.push((format!("bit {bit} flipped"), m));
    }
    for (i, pos) in positions(0x570_3B17, n, 96).into_iter().enumerate() {
        let mut m = seed_bytes.to_vec();
        m[pos] = if i % 2 == 0 { 0xFF } else { 0x00 };
        out.push((format!("byte {pos} stomped to {:#04x}", m[pos]), m));
    }
    out
}

/// Run one parser over the seed's whole mutant set; any panic fails with
/// the mutant that caused it. The parser's *value* is unconstrained — the
/// contract under mangled input is "reject cleanly", checked per-parser
/// below where the rejection is observable.
fn assert_no_panics(corpus_name: &str, seed_bytes: &[u8], parser: impl Fn(&[u8])) {
    for (what, mutant) in mutants(seed_bytes) {
        let result = catch_unwind(AssertUnwindSafe(|| parser(&mutant)));
        assert!(
            result.is_ok(),
            "{corpus_name}: parser panicked on {what} (len {})",
            mutant.len()
        );
    }
}

// ------------------------------------------------------------ tests --

#[test]
fn corpus_seeds_are_valid_inputs() {
    // The mangling below only means something if the unmangled corpus
    // actually parses — a stale or corrupt seed file degrades every other
    // test into noise, so pin validity first.
    let ch = corpus("client_hello_psk.bin");
    assert_eq!(parse_server_name(&ch).as_deref(), Some(SNI));
    let offer = parse_psk_offer(&ch).expect("seed ClientHello offers a PSK");
    assert_eq!(offer.identity.len(), TICKET_LEN);
    assert_eq!(
        parse_compression_offers(&ch).expect("seed offers compression"),
        quicert::compress::Algorithm::ALL.to_vec()
    );

    let nst = corpus("new_session_ticket.bin");
    let parsed = parse_new_session_ticket(&nst).expect("seed NST parses");
    assert_eq!(parsed.ticket, corpus("ticket_identity.bin"));

    assert!(ticket_issuer()
        .validate(&corpus("ticket_identity.bin"), SNI, NOW_SECS)
        .accepted());

    let der = corpus("certificate.der");
    let value = parse_one(&der).expect("seed certificate is valid DER");
    assert!(walk(&value) > 1, "certificate DER has nested structure");

    let dgram = corpus("initial_datagram.bin");
    assert!(
        parse_datagram(&dgram).is_some_and(|pkts| !pkts.is_empty()),
        "seed datagram parses to packets"
    );
}

/// Recursively walk a parsed DER value, counting nodes; `children()` on a
/// primitive or malformed constructed value must Err, not panic.
fn walk(value: &DerValue) -> usize {
    let mut nodes = 1;
    if value.is_constructed() {
        if let Ok(children) = value.children() {
            for child in &children {
                nodes += walk(child);
            }
        }
    }
    nodes
}

#[test]
fn client_hello_parsers_never_panic_on_mangled_corpus() {
    let ch = corpus("client_hello_psk.bin");
    assert_no_panics("client_hello_psk", &ch, |bytes| {
        let _ = parse_server_name(bytes);
        let _ = parse_psk_offer(bytes);
        let _ = parse_compression_offers(bytes);
    });
}

#[test]
fn new_session_ticket_parser_never_panics_on_mangled_corpus() {
    let nst = corpus("new_session_ticket.bin");
    assert_no_panics("new_session_ticket", &nst, |bytes| {
        let _ = parse_new_session_ticket(bytes);
    });
}

#[test]
fn ticket_decryption_rejects_every_tampered_identity() {
    let identity = corpus("ticket_identity.bin");
    let issuer = ticket_issuer();
    // Beyond not panicking, ticket validation has a checkable rejection
    // contract: any single tampered bit breaks the epoch, the MAC, or the
    // SNI binding — a mangled ticket must never validate.
    for (what, mutant) in mutants(&identity) {
        if mutant == identity {
            continue; // a truncation-to-full-length no-op cannot occur, but stay explicit
        }
        let verdict = catch_unwind(AssertUnwindSafe(|| issuer.validate(&mutant, SNI, NOW_SECS)))
            .unwrap_or_else(|_| panic!("ticket validation panicked on {what}"));
        assert!(
            !verdict.accepted(),
            "tampered ticket accepted ({what}): {verdict:?}"
        );
    }
    // A foreign STEK (tampered server key) decrypts to garbage: Malformed.
    let foreign = TicketIssuer::new(0xBAD_5EED, TicketConfig::default());
    assert_eq!(
        foreign.validate(&identity, SNI, NOW_SECS),
        TicketValidation::Malformed
    );
    // Binding survives only for the sealed SNI.
    assert!(!issuer
        .validate(&identity, "other.example", NOW_SECS)
        .accepted());
}

#[test]
fn x509_der_parser_never_panics_on_mangled_corpus() {
    let der = corpus("certificate.der");
    assert_no_panics("certificate", &der, |bytes| {
        if let Ok(value) = parse_one(bytes) {
            walk(&value);
        }
    });
}

#[test]
fn x509_der_parser_rejects_overlong_length_claims() {
    // Hand-crafted overlong forms: length octets claiming far more content
    // than the buffer holds, in every DER long-form width. These are the
    // shapes a corrupted length byte produces on the wire.
    let overlong: &[&[u8]] = &[
        &[0x30, 0x81, 0xFF],
        &[0x30, 0x82, 0xFF, 0xFF, 0x00],
        &[0x30, 0x83, 0xFF, 0xFF, 0xFF, 0x00, 0x00],
        &[0x30, 0x84, 0xFF, 0xFF, 0xFF, 0xFF, 0x00, 0x00, 0x00],
        &[0x30, 0x84, 0x7F, 0xFF, 0xFF, 0xFF],
        // Reserved/indefinite length forms.
        &[0x30, 0x80, 0x00, 0x00],
        &[0x30, 0xFF, 0x00],
    ];
    for bytes in overlong {
        let result = catch_unwind(AssertUnwindSafe(|| parse_one(bytes)));
        let parsed = result.unwrap_or_else(|_| panic!("DER parser panicked on {bytes:02x?}"));
        assert!(parsed.is_err(), "overlong DER accepted: {bytes:02x?}");
    }
}

#[test]
fn datagram_parser_never_panics_on_mangled_corpus() {
    let dgram = corpus("initial_datagram.bin");
    assert_no_panics("initial_datagram", &dgram, |bytes| {
        let _ = parse_datagram(bytes);
    });
}
