//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;

use quicert::compress::{compress, decompress, Algorithm};
use quicert::netsim::SimRng;
use quicert::x509::der;
use quicert::x509::{
    AttrKind, CertificateBuilder, DistinguishedName, Extension, KeyAlgorithm, SignatureAlgorithm,
    SubjectPublicKeyInfo,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn compression_roundtrips_arbitrary_bytes(input in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for alg in Algorithm::ALL {
            let c = compress(alg, &input);
            let back = decompress(&c, alg.dictionary()).expect("decompress");
            prop_assert_eq!(&back, &input, "{} roundtrip", alg);
        }
    }

    #[test]
    fn compression_roundtrips_repetitive_bytes(
        unit in proptest::collection::vec(any::<u8>(), 1..64),
        reps in 1usize..200,
    ) {
        let input: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        for alg in Algorithm::ALL {
            let c = compress(alg, &input);
            let back = decompress(&c, alg.dictionary()).expect("decompress");
            prop_assert_eq!(&back, &input);
            // Repetitive input beyond a few copies must actually shrink.
            if input.len() > 512 {
                prop_assert!(c.len() < input.len());
            }
        }
    }

    #[test]
    fn quic_varints_roundtrip(v in 0u64..(1 << 62)) {
        let mut buf = Vec::new();
        quicert::quic::varint::write(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(quicert::quic::varint::read(&buf, &mut pos), Some(v));
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(buf.len(), quicert::quic::varint::len(v));
    }

    #[test]
    fn der_integers_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let enc = der::integer_bytes(&bytes);
        let parsed = der::parse_one(&enc).expect("well-formed");
        prop_assert_eq!(parsed.tag, 0x02);
        // DER integers are minimal: no redundant leading zero unless needed
        // for sign.
        if parsed.content.len() > 1 {
            prop_assert!(parsed.content[0] != 0 || parsed.content[1] & 0x80 != 0);
        }
    }

    #[test]
    fn certificates_with_arbitrary_names_are_wellformed(
        cn in "[a-z]{1,40}\\.[a-z]{2,6}",
        org in "[A-Za-z ]{1,40}",
        san_count in 0usize..40,
        seed in any::<u64>(),
    ) {
        let sans: Vec<String> = (0..san_count).map(|i| format!("alt{i}.{cn}")).collect();
        let cert = CertificateBuilder::new(
            DistinguishedName::new()
                .with(AttrKind::Country, "US")
                .with(AttrKind::Organization, org)
                .with(AttrKind::CommonName, "Prop CA"),
            DistinguishedName::cn(&cn),
            SubjectPublicKeyInfo::new(KeyAlgorithm::EcdsaP256, seed),
            SignatureAlgorithm::Sha256WithRsa2048,
        )
        .extension(Extension::SubjectAltNames(sans))
        .build();
        // The whole certificate parses as nested DER.
        let parsed = der::parse_one(cert.der()).expect("certificate parses");
        prop_assert_eq!(parsed.children().unwrap().len(), 3);
        // Field attribution always accounts for every byte.
        prop_assert_eq!(cert.field_sizes().total(), cert.der_len());
    }

    #[test]
    fn rng_below_is_always_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn cdf_quantiles_are_monotone(samples in proptest::collection::vec(0.0f64..1e9, 1..200)) {
        let cdf = quicert::analysis::Cdf::new(samples);
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = cdf.quantile(i as f64 / 20.0);
            prop_assert!(q >= last);
            last = q;
        }
    }

    #[test]
    fn frames_roundtrip(offset in 0u64..1_000_000, data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        use quicert::quic::Frame;
        let frames = vec![
            Frame::Ack { largest: offset % 100, delay: 3, first_range: offset % 100 },
            Frame::Crypto { offset, data },
            Frame::Padding { n: 17 },
        ];
        let mut buf = Vec::new();
        for f in &frames {
            f.encode(&mut buf);
        }
        let decoded = Frame::decode_all(&buf).expect("decode");
        prop_assert_eq!(decoded, frames);
    }
}

#[test]
fn deterministic_worlds_are_identical() {
    use quicert::pki::{World, WorldConfig};
    let mk = || {
        World::generate(WorldConfig {
            domains: 800,
            seed: 0xDE7E_2217,
            ..WorldConfig::default()
        })
    };
    let a = mk();
    let b = mk();
    for (x, y) in a.domains().iter().zip(b.domains()) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.has_quic(), y.has_quic());
        if let (Some(cx), Some(cy)) = (a.https_chain(x), b.https_chain(y)) {
            assert_eq!(cx.concatenated_der(), cy.concatenated_der());
        }
    }
}
