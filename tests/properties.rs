//! Property-based tests over the workspace's core invariants.

use proptest::prelude::*;

use quicert::compress::{compress, decompress, Algorithm};
use quicert::netsim::SimRng;
use quicert::x509::der;
use quicert::x509::{
    AttrKind, CertificateBuilder, DistinguishedName, Extension, KeyAlgorithm, SignatureAlgorithm,
    SubjectPublicKeyInfo,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn compression_roundtrips_arbitrary_bytes(input in proptest::collection::vec(any::<u8>(), 0..4096)) {
        for alg in Algorithm::ALL {
            let c = compress(alg, &input);
            let back = decompress(&c, alg.dictionary()).expect("decompress");
            prop_assert_eq!(&back, &input, "{} roundtrip", alg);
        }
    }

    #[test]
    fn compression_roundtrips_repetitive_bytes(
        unit in proptest::collection::vec(any::<u8>(), 1..64),
        reps in 1usize..200,
    ) {
        let input: Vec<u8> = unit.iter().cycle().take(unit.len() * reps).copied().collect();
        for alg in Algorithm::ALL {
            let c = compress(alg, &input);
            let back = decompress(&c, alg.dictionary()).expect("decompress");
            prop_assert_eq!(&back, &input);
            // Repetitive input beyond a few copies must actually shrink.
            if input.len() > 512 {
                prop_assert!(c.len() < input.len());
            }
        }
    }

    #[test]
    fn quic_varints_roundtrip(v in 0u64..(1 << 62)) {
        let mut buf = Vec::new();
        quicert::quic::varint::write(&mut buf, v);
        let mut pos = 0;
        prop_assert_eq!(quicert::quic::varint::read(&buf, &mut pos), Some(v));
        prop_assert_eq!(pos, buf.len());
        prop_assert_eq!(buf.len(), quicert::quic::varint::len(v));
    }

    #[test]
    fn der_integers_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let enc = der::integer_bytes(&bytes);
        let parsed = der::parse_one(&enc).expect("well-formed");
        prop_assert_eq!(parsed.tag, 0x02);
        // DER integers are minimal: no redundant leading zero unless needed
        // for sign.
        if parsed.content.len() > 1 {
            prop_assert!(parsed.content[0] != 0 || parsed.content[1] & 0x80 != 0);
        }
    }

    #[test]
    fn certificates_with_arbitrary_names_are_wellformed(
        cn in "[a-z]{1,40}\\.[a-z]{2,6}",
        org in "[A-Za-z ]{1,40}",
        san_count in 0usize..40,
        seed in any::<u64>(),
    ) {
        let sans: Vec<String> = (0..san_count).map(|i| format!("alt{i}.{cn}")).collect();
        let cert = CertificateBuilder::new(
            DistinguishedName::new()
                .with(AttrKind::Country, "US")
                .with(AttrKind::Organization, org)
                .with(AttrKind::CommonName, "Prop CA"),
            DistinguishedName::cn(&cn),
            SubjectPublicKeyInfo::new(KeyAlgorithm::EcdsaP256, seed),
            SignatureAlgorithm::Sha256WithRsa2048,
        )
        .extension(Extension::SubjectAltNames(sans))
        .build();
        // The whole certificate parses as nested DER.
        let parsed = der::parse_one(cert.der()).expect("certificate parses");
        prop_assert_eq!(parsed.children().unwrap().len(), 3);
        // Field attribution always accounts for every byte.
        prop_assert_eq!(cert.field_sizes().total(), cert.der_len());
    }

    #[test]
    fn rng_below_is_always_in_range(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..32 {
            prop_assert!(rng.below(bound) < bound);
        }
    }

    #[test]
    fn cdf_quantiles_are_monotone(samples in proptest::collection::vec(0.0f64..1e9, 1..200)) {
        let cdf = quicert::analysis::Cdf::new(samples);
        let mut last = f64::NEG_INFINITY;
        for i in 0..=20 {
            let q = cdf.quantile(i as f64 / 20.0);
            prop_assert!(q >= last);
            last = q;
        }
    }

    #[test]
    fn frames_roundtrip(offset in 0u64..1_000_000, data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        use quicert::quic::Frame;
        let frames = vec![
            Frame::Ack { largest: offset % 100, delay: 3, first_range: offset % 100 },
            Frame::Crypto { offset, data },
            Frame::Padding { n: 17 },
        ];
        let mut buf = Vec::new();
        for f in &frames {
            f.encode(&mut buf);
        }
        let decoded = Frame::decode_all(&buf).expect("decode");
        prop_assert_eq!(decoded, frames);
    }
}

#[test]
fn deterministic_worlds_are_identical() {
    use quicert::pki::{World, WorldConfig};
    let mk = || {
        World::generate(WorldConfig {
            domains: 800,
            seed: 0xDE7E_2217,
            ..WorldConfig::default()
        })
    };
    let a = mk();
    let b = mk();
    for (x, y) in a.domains().iter().zip(b.domains()) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.has_quic(), y.has_quic());
        if let (Some(cx), Some(cy)) = (a.https_chain(x), b.https_chain(y)) {
            assert_eq!(cx.concatenated_der(), cy.concatenated_der());
        }
    }
}

mod streaming_world_properties {
    use proptest::prelude::*;
    use quicert::pki::{World, WorldConfig};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        // World::stream_domains is chunk-size invariant: any chunking of a
        // random-size world concatenates to exactly the materialised
        // population, so the streaming scan path sees the same records a
        // generated world holds, at every chunk size.
        #[test]
        fn stream_domains_is_chunk_size_invariant(
            domains in 1usize..600,
            chunk in 1usize..256,
            seed in any::<u64>(),
        ) {
            let config = WorldConfig {
                domains,
                seed,
                ..WorldConfig::default()
            };
            let eager = World::generate(config.clone());
            let lazy = World::streaming(config);
            let mut seen = 0usize;
            for chunk_records in lazy.stream_domains(chunk) {
                prop_assert!(chunk_records.len() <= chunk);
                for record in &chunk_records {
                    let reference = &eager.domains()[seen];
                    prop_assert_eq!(record.rank, reference.rank);
                    prop_assert_eq!(&record.name, &reference.name);
                    prop_assert_eq!(record.seed, reference.seed);
                    prop_assert_eq!(record.has_quic(), reference.has_quic());
                    seen += 1;
                }
            }
            prop_assert_eq!(seen, domains);
        }
    }
}

mod simnet_properties {
    use proptest::prelude::*;
    use quicert::netsim::{
        Datagram, Endpoint, ExchangeLimits, LinkModel, SimDuration, SimNet, SimRng, SimTime, Wire,
    };
    use std::net::Ipv4Addr;

    const A: Ipv4Addr = Ipv4Addr::new(10, 9, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 9, 0, 2);

    /// Emits one datagram per entry of `sizes` at start, all at once.
    struct Burst {
        sizes: Vec<usize>,
    }

    impl Endpoint for Burst {
        fn start(&mut self, _now: SimTime, out: &mut Vec<Datagram>) {
            for &size in &self.sizes {
                out.push(Datagram::new(A, B, 1000, 443, vec![0xAB; size]));
            }
        }
        fn on_datagram(&mut self, _d: &Datagram, _now: SimTime, _out: &mut Vec<Datagram>) {}
        fn on_timer(&mut self, _now: SimTime, _out: &mut Vec<Datagram>) {}
        fn next_timer(&self) -> Option<SimTime> {
            None
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    /// Records payload sizes in arrival order.
    #[derive(Default)]
    struct Recorder {
        seen: Vec<usize>,
    }

    impl Endpoint for Recorder {
        fn on_datagram(&mut self, d: &Datagram, _now: SimTime, _out: &mut Vec<Datagram>) {
            self.seen.push(d.payload_len());
        }
        fn on_timer(&mut self, _now: SimTime, _out: &mut Vec<Datagram>) {}
        fn next_timer(&self) -> Option<SimTime> {
            None
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    /// Ping-pong initiator used by the batch-invariance property.
    struct Pinger {
        remaining: u32,
        payload: usize,
    }

    struct Echoer;

    impl Endpoint for Pinger {
        fn start(&mut self, _now: SimTime, out: &mut Vec<Datagram>) {
            if self.remaining > 0 {
                out.push(Datagram::new(A, B, 1000, 443, vec![1; self.payload]));
            }
        }
        fn on_datagram(&mut self, _d: &Datagram, _now: SimTime, out: &mut Vec<Datagram>) {
            self.remaining -= 1;
            if self.remaining > 0 {
                out.push(Datagram::new(A, B, 1000, 443, vec![1; self.payload]));
            }
        }
        fn on_timer(&mut self, _now: SimTime, _out: &mut Vec<Datagram>) {}
        fn next_timer(&self) -> Option<SimTime> {
            None
        }
        fn is_done(&self) -> bool {
            self.remaining == 0
        }
    }

    impl Endpoint for Echoer {
        fn on_datagram(&mut self, d: &Datagram, _now: SimTime, out: &mut Vec<Datagram>) {
            out.push(d.reply_with(d.payload.clone()));
        }
        fn on_timer(&mut self, _now: SimTime, _out: &mut Vec<Datagram>) {}
        fn next_timer(&self) -> Option<SimTime> {
            None
        }
        fn is_done(&self) -> bool {
            true
        }
    }

    fn session_wire(seed: u64) -> Wire {
        Wire::symmetric(LinkModel {
            latency: SimDuration::from_millis(1 + seed % 19),
            jitter: SimDuration::from_millis(seed % 5),
            loss: (seed % 4) as f64 * 0.07,
            ..LinkModel::default()
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        // Datagrams sharing one arrival timestamp are delivered in send
        // (sequence) order: the heap tie-break is (time, session, seq).
        #[test]
        fn equal_timestamp_deliveries_preserve_send_order(
            sizes in proptest::collection::vec(1usize..1400, 1..40),
            latency_us in 1u64..50_000,
        ) {
            let mut recorder = Recorder::default();
            let mut net = SimNet::new();
            let id = net.add_session(
                Box::new(Burst { sizes: sizes.clone() }),
                Box::new(&mut recorder),
                Wire::ideal(SimDuration::from_micros(latency_us)),
                ExchangeLimits::default(),
                SimRng::new(9),
            );
            net.run();
            prop_assert!(net.take_outcome(id).quiesced);
            drop(net);
            prop_assert_eq!(recorder.seen, sizes);
        }

        // A session's outcome never depends on how many other sessions
        // share the batch or where the batch is split.
        #[test]
        fn batch_size_never_changes_per_session_outcomes(
            session_seeds in proptest::collection::vec(any::<u64>(), 1..24),
            split in 0usize..24,
        ) {
            let run_batch = |seeds: &[u64]| -> Vec<_> {
                let mut net = SimNet::with_capacity(seeds.len());
                let ids: Vec<_> = seeds
                    .iter()
                    .map(|&seed| {
                        net.add_session(
                            Box::new(Pinger {
                                remaining: 1 + (seed % 6) as u32,
                                payload: 40 + (seed % 200) as usize,
                            }),
                            Box::new(Echoer),
                            session_wire(seed),
                            ExchangeLimits::default(),
                            SimRng::new(seed ^ 0x5E55),
                        )
                    })
                    .collect();
                net.run();
                ids.into_iter().map(|id| net.take_outcome(id)).collect()
            };

            let whole = run_batch(&session_seeds);
            let split = split.min(session_seeds.len());
            let (left, right) = session_seeds.split_at(split);
            let mut pieces = run_batch(left);
            pieces.extend(run_batch(right));
            prop_assert_eq!(whole, pieces);
        }
    }
}

mod session_properties {
    use proptest::prelude::*;
    use quicert::session::{TicketConfig, TicketIssuer, TicketValidation};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        // STEK sealing round-trips: a freshly issued ticket validates for
        // any SNI, seed, nonce, and issuance instant within its lifetime.
        #[test]
        fn stek_sealing_roundtrips(
            master_seed in any::<u64>(),
            sni in "[a-z]{1,30}\\.[a-z]{2,6}",
            now in 0u64..100_000_000_000,
            nonce in any::<u64>(),
            age in 0u64..7_200,
        ) {
            let issuer = TicketIssuer::new(master_seed, TicketConfig::default());
            let ticket = issuer.issue(&sni, now, nonce);
            let at = now + age;
            let verdict = issuer.validate(&ticket, &sni, at);
            // Within the lifetime the only possible rejection is the STEK
            // rotating out from under a ticket issued near an epoch edge.
            let epochs_apart =
                issuer.config.epoch_at(at) - issuer.config.epoch_at(now);
            if epochs_apart <= 1 {
                prop_assert_eq!(verdict, TicketValidation::Valid { age_secs: age });
            } else {
                prop_assert_eq!(verdict, TicketValidation::RotatedKey);
            }
        }

        // Past the lifetime or past the rotation window, validation
        // deterministically rejects — the cold-path fallback trigger.
        #[test]
        fn stale_tickets_always_reject(
            master_seed in any::<u64>(),
            sni in "[a-z]{1,20}\\.[a-z]{2,4}",
            now in 0u64..100_000_000_000,
            extra in 1u64..1_000_000,
        ) {
            let config = TicketConfig::default();
            let issuer = TicketIssuer::new(master_seed, config);
            let ticket = issuer.issue(&sni, now, 0);
            let at = now + config.lifetime_secs.max(2 * config.rotation_secs) + extra;
            let verdict = issuer.validate(&ticket, &sni, at);
            prop_assert!(
                !verdict.accepted(),
                "stale ticket accepted: {verdict:?} at +{extra}s"
            );
            prop_assert!(matches!(
                verdict,
                TicketValidation::Expired | TicketValidation::RotatedKey
            ));
        }

        // Any single-byte tamper (or a wrong STEK, or a wrong SNI) is
        // rejected: tickets bind to key, host, and content.
        #[test]
        fn tampered_or_misbound_tickets_reject(
            master_seed in any::<u64>(),
            sni in "[a-z]{1,20}\\.[a-z]{2,4}",
            now in 0u64..100_000_000_000,
            flip_at in 8usize..40,
            flip_bits in 1u8..255,
        ) {
            let issuer = TicketIssuer::new(master_seed, TicketConfig::default());
            let ticket = issuer.issue(&sni, now, 1);

            let mut tampered = ticket.clone();
            tampered[flip_at] ^= flip_bits;
            prop_assert!(!issuer.validate(&tampered, &sni, now).accepted());

            let other_key = TicketIssuer::new(master_seed ^ 0xA5A5, TicketConfig::default());
            prop_assert!(!other_key.validate(&ticket, &sni, now).accepted());

            let other_sni = format!("x{sni}");
            prop_assert_eq!(
                issuer.validate(&ticket, &other_sni, now),
                TicketValidation::WrongSni
            );
        }
    }
}
