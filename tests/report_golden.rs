//! Golden-report regression: render the full campaign report (every
//! section on) for one pinned configuration and compare it byte-for-byte
//! against a checked-in snapshot.
//!
//! Per-section unit tests catch broken sections; only a whole-report
//! snapshot catches *silent drift* — a reordered section, a changed label,
//! a float formatted differently, an artifact quietly recomputed under new
//! parameters. The engine guarantees worker-count invariance, so the
//! snapshot is stable on any machine.
//!
//! To (re)generate the snapshot after an intentional report change:
//!
//! ```sh
//! QUICERT_BLESS=1 cargo test --test report_golden
//! ```

use std::fs;
use std::path::PathBuf;

use quicert::core::{full_report, Campaign, CampaignConfig, ReportOptions};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// The pinned campaign: small world, fixed seed, pinned worker count (the
/// artifacts are worker-invariant; pinning just removes one variable), and
/// every report section enabled at snapshot-friendly sizes.
fn pinned_report() -> String {
    let campaign = Campaign::new(
        CampaignConfig::small()
            .with_domains(700)
            .with_seed(0x601D)
            .with_workers(2),
    );
    full_report(
        &campaign,
        ReportOptions {
            telescope_per_provider: 2,
            fig11_reps: 1,
            compression_stride: 30,
            full_sweep: true,
            guidance_mitigation: true,
            network_profiles: true,
            resumption: true,
            pq_eras: true,
            population_scale: true,
            chaos: true,
            churn: true,
            scale_sizes: [0, 0, 0],
        },
    )
}

#[test]
fn report_matches_golden_snapshot() {
    let golden_path = golden_dir().join("report.txt");
    let got = pinned_report();

    if std::env::var_os("QUICERT_BLESS").is_some_and(|v| v != "0") {
        fs::create_dir_all(golden_dir()).expect("create tests/golden");
        fs::write(&golden_path, &got).expect("write golden snapshot");
        eprintln!("blessed {} ({} bytes)", golden_path.display(), got.len());
        return;
    }

    let want = fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run `QUICERT_BLESS=1 cargo test \
             --test report_golden` to generate it",
            golden_path.display()
        )
    });

    if got != want {
        // Persist the actual output so CI can upload it as an artifact and
        // a human can diff it against the snapshot.
        let actual_path = golden_dir().join("report.actual.txt");
        let _ = fs::write(&actual_path, &got);
        let first_diff = got
            .lines()
            .zip(want.lines())
            .enumerate()
            .find(|(_, (g, w))| g != w);
        match first_diff {
            Some((line, (g, w))) => panic!(
                "report drifted from the golden snapshot at line {}:\n  golden: {w}\n  actual: {g}\n\
                 full output written to {}; if the change is intentional, re-bless \
                 with QUICERT_BLESS=1",
                line + 1,
                actual_path.display()
            ),
            None => panic!(
                "report drifted from the golden snapshot (lengths {} vs {}); \
                 full output written to {}; if the change is intentional, re-bless \
                 with QUICERT_BLESS=1",
                got.len(),
                want.len(),
                actual_path.display()
            ),
        }
    }
}

#[test]
fn pinned_report_is_deterministic_across_renders() {
    // The snapshot comparison above only helps if the render itself is a
    // pure function of the configuration.
    assert_eq!(pinned_report(), pinned_report());
}
