//! Wire-level integration: invariants checked on the actual bytes a server
//! emits, across the quic/tls/x509 crates.

use std::net::Ipv4Addr;

use quicert::netsim::{Datagram, Endpoint, SimDuration, SimTime};
use quicert::quic::packet::{extract_scid, parse_datagram, PacketType};
use quicert::quic::{ClientConfig, ClientConn, ServerBehavior, ServerConfig, ServerConn};
use quicert::x509::{
    CertificateBuilder, CertificateChain, DistinguishedName, Extension, KeyAlgorithm,
    SignatureAlgorithm, SubjectPublicKeyInfo,
};

const SERVER_ADDR: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 9);

fn chain() -> CertificateChain {
    let inter_dn = DistinguishedName::ca("US", "Let's Encrypt", "R3");
    let root_dn = DistinguishedName::ca("US", "ISRG", "ISRG Root X1");
    let inter = CertificateBuilder::new(
        root_dn,
        inter_dn.clone(),
        SubjectPublicKeyInfo::new(KeyAlgorithm::Rsa2048, 1),
        SignatureAlgorithm::Sha256WithRsa2048,
    )
    .build();
    let leaf = CertificateBuilder::new(
        inter_dn,
        DistinguishedName::cn("wire.example"),
        SubjectPublicKeyInfo::new(KeyAlgorithm::EcdsaP256, 2),
        SignatureAlgorithm::Sha256WithRsa2048,
    )
    .extension(Extension::SubjectAltNames(vec!["wire.example".into()]))
    .build();
    CertificateChain::new(leaf, vec![inter])
}

fn server(behavior: ServerBehavior) -> ServerConn {
    ServerConn::new(ServerConfig {
        behavior,
        chain: chain(),
        leaf_key: KeyAlgorithm::EcdsaP256,
        compression_support: vec![],
        resumption: None,
        seed: 404,
    })
}

/// Drive one client Initial into the server, return the server's response
/// datagrams.
fn first_flight(behavior: ServerBehavior, initial_size: usize) -> Vec<Datagram> {
    let mut client = ClientConn::new(ClientConfig::scanner(initial_size, SERVER_ADDR, 5));
    let mut client_out = Vec::new();
    client.start(SimTime::ZERO, &mut client_out);
    assert_eq!(client_out.len(), 1);

    let mut srv = server(behavior);
    let mut server_out = Vec::new();
    srv.on_datagram(&client_out[0], SimTime::ZERO, &mut server_out);
    server_out
}

#[test]
fn client_initial_is_parseable_and_padded() {
    let mut client = ClientConn::new(ClientConfig::scanner(1357, SERVER_ADDR, 6));
    let mut out = Vec::new();
    client.start(SimTime::ZERO, &mut out);
    let dgram = &out[0];
    assert_eq!(dgram.payload_len(), 1357);
    let packets = parse_datagram(&dgram.payload).expect("well-formed datagram");
    assert_eq!(packets.len(), 1);
    assert_eq!(packets[0].ty, PacketType::Initial);
    assert!(packets[0].padding_len() > 0, "CH alone is well under 1357");
    assert_eq!(
        extract_scid(&dgram.payload).as_deref(),
        Some(client.scid().as_bytes())
    );
}

#[test]
fn compliant_server_coalesces_and_pads_correctly() {
    let flights = first_flight(ServerBehavior::rfc_compliant(), 1362);
    assert!(!flights.is_empty());
    let first = parse_datagram(&flights[0].payload).expect("parseable");
    // Coalesced: the first datagram carries Initial + Handshake packets.
    assert_eq!(first[0].ty, PacketType::Initial);
    assert!(
        first.iter().any(|p| p.ty == PacketType::Handshake),
        "Initial and Handshake coalesce into one datagram"
    );
    // RFC 9000 §14.1: the ack-eliciting-Initial datagram is >= 1200 bytes.
    assert!(flights[0].payload_len() >= 1200);
    // The whole first flight respects the 3x budget on the wire.
    let total: usize = flights.iter().map(|d| d.payload_len()).sum();
    assert!(total <= 3 * 1362, "wire total {total}");
}

#[test]
fn cloudflare_behavior_emits_separate_padded_datagrams() {
    let flights = first_flight(ServerBehavior::cloudflare_like(), 1362);
    assert!(flights.len() >= 3, "ACK, SH, and handshake datagrams");
    // Datagram A: ACK-only Initial, padded although not ack-eliciting.
    let a = parse_datagram(&flights[0].payload).unwrap();
    assert_eq!(a.len(), 1, "no coalescing");
    assert_eq!(a[0].ty, PacketType::Initial);
    assert_eq!(a[0].crypto_data_len(), 0, "first datagram is the bare ACK");
    assert!(a[0].padding_len() > 1000, "superfluous padding");
    // Datagram B: the ServerHello Initial, also padded.
    let b = parse_datagram(&flights[1].payload).unwrap();
    assert_eq!(b.len(), 1);
    assert!(b[0].crypto_data_len() > 0);
    // No Handshake packet shares a datagram with an Initial.
    for dgram in &flights {
        let packets = parse_datagram(&dgram.payload).unwrap();
        let kinds: std::collections::HashSet<_> = packets.iter().map(|p| p.ty).collect();
        assert!(kinds.len() == 1, "no coalescing anywhere");
    }
    // And the wire total exceeds the limit: the §4.1 amplification bug.
    let total: usize = flights.iter().map(|d| d.payload_len()).sum();
    assert!(total > 3 * 1362, "wire total {total} exceeds the limit");
}

#[test]
fn retry_flow_round_trips_on_the_wire() {
    let mut client = ClientConn::new(ClientConfig::scanner(1362, SERVER_ADDR, 8));
    let mut out = Vec::new();
    client.start(SimTime::ZERO, &mut out);
    let mut srv = server(ServerBehavior::retry_first());
    let mut retry_out = Vec::new();
    srv.on_datagram(&out[0], SimTime::ZERO, &mut retry_out);
    assert_eq!(retry_out.len(), 1);
    let retry = parse_datagram(&retry_out[0].payload).unwrap();
    assert_eq!(retry[0].ty, PacketType::Retry);
    assert!(!retry[0].token.is_empty());

    // The client resends its Initial with the token echoed.
    let mut second = Vec::new();
    let reply = retry_out[0].clone();
    client.on_datagram(
        &reply,
        SimTime::ZERO + SimDuration::from_millis(40),
        &mut second,
    );
    assert_eq!(second.len(), 1);
    let resent = parse_datagram(&second[0].payload).unwrap();
    assert_eq!(resent[0].ty, PacketType::Initial);
    assert_eq!(resent[0].token, retry[0].token);
}

#[test]
fn tls_flight_on_the_wire_contains_the_certificate_chain() {
    let flights = first_flight(ServerBehavior::rfc_compliant(), 1472);
    let mut crypto = 0usize;
    for dgram in &flights {
        for pkt in parse_datagram(&dgram.payload).unwrap() {
            crypto += pkt.crypto_data_len();
        }
    }
    // The CRYPTO bytes must carry at least the whole chain plus the other
    // handshake messages.
    assert!(crypto > chain().total_der_len());
}
